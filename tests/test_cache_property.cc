/**
 * @file
 * Property tests for the cache array, swept over geometries with
 * parameterized gtest: behavioural equivalence against a reference
 * LRU model under long random access traces, and structural
 * invariants (capacity, set discipline, no phantom hits).
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/cache_line.hh"
#include "common/rng.hh"

namespace consim
{
namespace
{

/** Reference model: per-set LRU lists of block addresses. */
class ReferenceLru
{
  public:
    ReferenceLru(std::uint64_t sets, int assoc)
        : sets_(sets), assoc_(assoc), lists_(sets)
    {
    }

    /** @return true on hit. Installs (with LRU eviction) on miss. */
    bool
    access(BlockAddr block)
    {
        auto &lst = lists_[block % sets_];
        for (auto it = lst.begin(); it != lst.end(); ++it) {
            if (*it == block) {
                lst.erase(it);
                lst.push_front(block);
                return true;
            }
        }
        lst.push_front(block);
        if (lst.size() > static_cast<std::size_t>(assoc_))
            lst.pop_back();
        return false;
    }

  private:
    std::uint64_t sets_;
    int assoc_;
    std::vector<std::list<BlockAddr>> lists_;
};

struct Geometry
{
    std::uint64_t bytes;
    int assoc;
};

class CacheArrayProperty : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheArrayProperty, MatchesReferenceLruOnRandomTrace)
{
    const auto param = GetParam();
    CacheGeometry g;
    g.sizeBytes = param.bytes;
    g.assoc = param.assoc;
    CacheArray<PrivateCacheLine> cache(g);
    ReferenceLru ref(g.numSets(), g.assoc);
    Rng rng(param.bytes ^ param.assoc);

    // Address range ~3x capacity so hits and misses interleave.
    const std::uint64_t range = g.numLines() * 3;
    for (int i = 0; i < 50'000; ++i) {
        const BlockAddr block = rng.below(range);
        PrivateCacheLine *line = cache.lookup(block);
        const bool ref_hit = ref.access(block);
        ASSERT_EQ(line != nullptr, ref_hit)
            << "divergence at access " << i << " block " << block;
        if (line) {
            cache.touch(line);
        } else {
            auto *victim = cache.victim(block);
            cache.install(victim, block);
        }
    }
}

TEST_P(CacheArrayProperty, NeverExceedsCapacityAndStaysInSet)
{
    const auto param = GetParam();
    CacheGeometry g;
    g.sizeBytes = param.bytes;
    g.assoc = param.assoc;
    CacheArray<PrivateCacheLine> cache(g);
    Rng rng(99);

    for (int i = 0; i < 20'000; ++i) {
        const BlockAddr block = rng.below(g.numLines() * 5);
        if (!cache.lookup(block))
            cache.install(cache.victim(block), block);
    }
    EXPECT_LE(cache.countValid(), g.numLines());

    // Every valid line must be findable again (set discipline).
    cache.forEachLine([&](const PrivateCacheLine &line) {
        if (!line.valid)
            return;
        EXPECT_NE(cache.lookup(line.tag), nullptr);
    });
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheArrayProperty,
    ::testing::Values(Geometry{4096, 1}, Geometry{4096, 2},
                      Geometry{8192, 4}, Geometry{16384, 8},
                      Geometry{65536, 4}, Geometry{65536, 16},
                      Geometry{131072, 8}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "b" + std::to_string(info.param.bytes) + "_a" +
               std::to_string(info.param.assoc);
    });

} // namespace
} // namespace consim
