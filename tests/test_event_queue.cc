/**
 * @file
 * Unit tests for the calendar-queue event core: (when, seq) ordering,
 * FIFO tie-break among same-cycle events, the overflow-heap path for
 * delays beyond the bucket ring, and the zero-delay guard.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/event_queue.hh"

namespace consim
{
namespace
{

/** Drive the queue one cycle at a time, recording event firings. */
struct Harness
{
    CalendarQueue q;
    Cycle now = 0;
    std::vector<int> fired;

    void
    at(Cycle delay, int id)
    {
        q.schedule(now, delay, [this, id] { fired.push_back(id); });
    }

    /** Tick through cycle `now`..`upto` inclusive. */
    void
    runTo(Cycle upto)
    {
        for (; now <= upto; ++now)
            q.runDue(now);
    }
};

TEST(CalendarQueue, RunsEventsAtTheirCycleInDelayOrder)
{
    Harness h;
    h.at(6, 2);
    h.at(1, 0);
    h.at(3, 1);
    h.at(150, 3);
    EXPECT_EQ(h.q.size(), 4u);
    h.runTo(200);
    EXPECT_EQ(h.fired, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_TRUE(h.q.empty());
}

TEST(CalendarQueue, SameCycleEventsRunFifoBySchedulingOrder)
{
    Harness h;
    for (int i = 0; i < 16; ++i)
        h.at(5, i);
    h.runTo(5);
    ASSERT_EQ(h.fired.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(h.fired[i], i);
}

TEST(CalendarQueue, LongDelaysTakeTheOverflowHeap)
{
    Harness h;
    // All at or beyond the ring horizon.
    h.at(CalendarQueue::ringCycles, 0);
    h.at(CalendarQueue::ringCycles + 1, 1);
    h.at(3 * CalendarQueue::ringCycles, 2);
    h.runTo(3 * CalendarQueue::ringCycles + 1);
    EXPECT_EQ(h.fired, (std::vector<int>{0, 1, 2}));
    EXPECT_TRUE(h.q.empty());
}

TEST(CalendarQueue, OverflowAndRingEventsMergeInSeqOrderPerCycle)
{
    Harness h;
    const Cycle meet = CalendarQueue::ringCycles + 64;
    // seq 0: long delay -> overflow heap, due at `meet`.
    h.at(meet, 0);
    // Advance, then schedule short delays due the same cycle; they
    // land in the ring with higher seq, so they must run after.
    h.runTo(meet - 11);
    ASSERT_EQ(h.now, meet - 10);
    h.at(10, 1);
    h.at(10, 2);
    h.runTo(meet);
    EXPECT_EQ(h.fired, (std::vector<int>{0, 1, 2}));
}

TEST(CalendarQueue, OverflowHeapOrdersByWhenThenSeq)
{
    Harness h;
    h.at(2000, 3);
    h.at(1000, 1);
    h.at(1000, 2); // same when as id 1, later seq
    h.at(500, 0);
    h.runTo(2000);
    EXPECT_EQ(h.fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CalendarQueue, EventsMayScheduleMoreEvents)
{
    Harness h;
    h.q.schedule(0, 1, [&h] {
        h.fired.push_back(0);
        // Reentrant schedules from inside runDue, one short (ring)
        // and one long (overflow).
        h.q.schedule(h.now, 2, [&h] { h.fired.push_back(1); });
        h.q.schedule(h.now, CalendarQueue::ringCycles + 5,
                     [&h] { h.fired.push_back(2); });
    });
    h.runTo(CalendarQueue::ringCycles + 10);
    EXPECT_EQ(h.fired, (std::vector<int>{0, 1, 2}));
    EXPECT_TRUE(h.q.empty());
}

TEST(CalendarQueue, SizeTracksPendingEvents)
{
    Harness h;
    EXPECT_TRUE(h.q.empty());
    h.at(1, 0);
    h.at(2, 1);
    h.at(5000, 2);
    EXPECT_EQ(h.q.size(), 3u);
    h.runTo(2);
    EXPECT_EQ(h.q.size(), 1u);
    h.runTo(5000);
    EXPECT_TRUE(h.q.empty());
}

TEST(CalendarQueueDeathTest, ZeroDelayIsForbidden)
{
    CalendarQueue q;
    EXPECT_DEATH(q.schedule(10, 0, [] {}), "zero-delay");
}

} // namespace
} // namespace consim
