/**
 * @file
 * Unit tests for the L2 partition bank through the mock fabric:
 * local miss/hit flows against a hand-played home directory, forward
 * service (clean, dirty, with owner extraction), invalidations,
 * inclusive back-invalidation, eviction writebacks, and the
 * writeback-buffer window.
 *
 * The bank under test sits at tile 0 (shared-4-way: group 0 =
 * {0,1,4,5}, bank index 0 serves blocks with block % 4 == 0).
 */

#include <gtest/gtest.h>

#include "coherence/l2_bank.hh"

#include "mock_fabric.hh"

namespace consim
{
namespace
{

class L2BankUnit : public ::testing::Test
{
  protected:
    L2BankUnit() : bank_(fab_, 0) {}

    Msg
    l1Req(MsgType t, BlockAddr block, CoreId core)
    {
        Msg m;
        m.type = t;
        m.block = block;
        m.srcTile = core;
        m.srcUnit = Unit::L1;
        m.dstTile = 0;
        m.dstUnit = Unit::L2Bank;
        m.reqCore = core;
        m.reqGroup = 0;
        m.vm = 0;
        return m;
    }

    /** Play the home's response to an outstanding GetS/GetM. */
    void
    grantAndData(BlockAddr block, L2State state, bool no_data = false,
                 bool c2c = false, bool dirty = false)
    {
        Msg g;
        g.type = MsgType::Grant;
        g.block = block;
        g.grantState = state;
        g.noDataNeeded = no_data;
        g.vm = 0;
        bank_.handle(g);
        if (!no_data) {
            Msg d;
            d.type = MsgType::Data;
            d.block = block;
            d.c2cTransfer = c2c;
            d.dirtyData = dirty;
            d.vm = 0;
            bank_.handle(d);
        }
        fab_.drainEvents();
    }

    /** Full cold-read choreography: miss -> home -> fill -> L1Data. */
    void
    coldRead(BlockAddr block, CoreId core,
             L2State grant = L2State::Exclusive)
    {
        bank_.handle(l1Req(MsgType::L1GetS, block, core));
        fab_.drainEvents();
        grantAndData(block, grant);
    }

    void
    coldWrite(BlockAddr block, CoreId core)
    {
        bank_.handle(l1Req(MsgType::L1GetM, block, core));
        fab_.drainEvents();
        grantAndData(block, L2State::Modified);
    }

    MockFabric fab_;
    L2Bank bank_;
};

TEST_F(L2BankUnit, MissGoesToHomeThenFillsAndGrants)
{
    bank_.handle(l1Req(MsgType::L1GetS, 8, 1));
    fab_.drainEvents();
    const auto gets = fab_.ofType(MsgType::GetS);
    ASSERT_EQ(gets.size(), 1u);
    EXPECT_EQ(gets[0].dstUnit, Unit::Dir);
    EXPECT_EQ(gets[0].reqGroup, 0);
    EXPECT_EQ(gets[0].reqBankTile, 0);

    grantAndData(8, L2State::Exclusive);
    const auto fills = fab_.ofType(MsgType::L1Data);
    ASSERT_EQ(fills.size(), 1u);
    EXPECT_EQ(fills[0].dstTile, 1);
    EXPECT_FALSE(fills[0].isWrite);
    EXPECT_EQ(fab_.ofType(MsgType::Done).size(), 1u);
    EXPECT_TRUE(bank_.idle());
    EXPECT_EQ(fab_.l2Misses, 1);
}

TEST_F(L2BankUnit, SecondMemberReadHitsWithoutHomeTraffic)
{
    coldRead(8, 1);
    fab_.sent.clear();
    bank_.handle(l1Req(MsgType::L1GetS, 8, 4));
    fab_.drainEvents();
    EXPECT_TRUE(fab_.ofType(MsgType::GetS).empty());
    EXPECT_EQ(fab_.ofType(MsgType::L1Data).size(), 1u);
    EXPECT_EQ(bank_.bankStats().hits.value(), 1u);
}

TEST_F(L2BankUnit, WriteAfterExclusiveReadIsLocal)
{
    coldRead(8, 1); // E grant
    fab_.sent.clear();
    bank_.handle(l1Req(MsgType::L1GetM, 8, 1));
    fab_.drainEvents();
    // Silent E->M: no home traffic, write granted locally.
    EXPECT_TRUE(fab_.ofType(MsgType::GetM).empty());
    const auto fills = fab_.ofType(MsgType::L1Data);
    ASSERT_EQ(fills.size(), 1u);
    EXPECT_TRUE(fills[0].isWrite);
}

TEST_F(L2BankUnit, WriteToSharedLineUpgradesThroughHome)
{
    coldRead(8, 1, L2State::Shared);
    fab_.sent.clear();
    bank_.handle(l1Req(MsgType::L1GetM, 8, 1));
    fab_.drainEvents();
    ASSERT_EQ(fab_.ofType(MsgType::GetM).size(), 1u);
    EXPECT_EQ(bank_.bankStats().upgrades.value(), 1u);
    grantAndData(8, L2State::Modified, /*no_data=*/true);
    ASSERT_EQ(fab_.ofType(MsgType::L1Data).size(), 1u);
    EXPECT_TRUE(bank_.idle());
}

TEST_F(L2BankUnit, WriteGrantInvalidatesOtherMemberL1s)
{
    coldRead(8, 1, L2State::Shared);
    bank_.handle(l1Req(MsgType::L1GetS, 8, 4));
    bank_.handle(l1Req(MsgType::L1GetS, 8, 5));
    fab_.drainEvents();
    fab_.sent.clear();

    bank_.handle(l1Req(MsgType::L1GetM, 8, 1));
    fab_.drainEvents();
    grantAndData(8, L2State::Modified, /*no_data=*/true);
    // Cores 4 and 5 held S copies; both get back-invalidated.
    const auto invs = fab_.ofType(MsgType::L1Inv);
    ASSERT_EQ(invs.size(), 2u);
}

TEST_F(L2BankUnit, LocalReadOfOwnedLineExtractsFromOwnerL1)
{
    coldWrite(8, 1); // core 1's L1 owns the line
    fab_.sent.clear();

    bank_.handle(l1Req(MsgType::L1GetS, 8, 4));
    fab_.drainEvents();
    const auto wbreqs = fab_.ofType(MsgType::L1WbReq);
    ASSERT_EQ(wbreqs.size(), 1u);
    EXPECT_EQ(wbreqs[0].dstTile, 1);
    EXPECT_FALSE(wbreqs[0].toInvalid);

    Msg wb;
    wb.type = MsgType::L1WbData;
    wb.block = 8;
    wb.srcTile = 1;
    bank_.handle(wb);
    fab_.drainEvents();
    ASSERT_EQ(fab_.ofType(MsgType::L1Data).size(), 1u);
    EXPECT_TRUE(bank_.idle());
}

TEST_F(L2BankUnit, CrossingPutMCompletesExtraction)
{
    coldWrite(8, 1);
    fab_.sent.clear();
    bank_.handle(l1Req(MsgType::L1GetS, 8, 4));
    fab_.drainEvents();
    ASSERT_EQ(fab_.ofType(MsgType::L1WbReq).size(), 1u);

    // The owner evicted concurrently: its PutM arrives instead.
    Msg put;
    put.type = MsgType::L1PutM;
    put.block = 8;
    put.srcTile = 1;
    bank_.handle(put);
    fab_.drainEvents();
    ASSERT_EQ(fab_.ofType(MsgType::L1Data).size(), 1u);

    // The stale WbReq answer afterwards is dropped harmlessly.
    Msg wb;
    wb.type = MsgType::L1WbData;
    wb.block = 8;
    wb.srcTile = 1;
    wb.stale = true;
    bank_.handle(wb);
    fab_.drainEvents();
    EXPECT_TRUE(bank_.idle());
}

TEST_F(L2BankUnit, FwdGetSOnCleanLineRepliesCleanData)
{
    coldRead(8, 1); // E, clean
    fab_.sent.clear();

    Msg fwd;
    fwd.type = MsgType::FwdGetS;
    fwd.block = 8;
    fwd.reqBankTile = 10;
    fwd.reqGroup = 2;
    fwd.vm = 0;
    bank_.handle(fwd);
    fab_.drainEvents();

    const auto data = fab_.ofType(MsgType::Data);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0].dstTile, 10);
    EXPECT_TRUE(data[0].c2cTransfer);
    EXPECT_FALSE(data[0].dirtyData);
    const auto acks = fab_.ofType(MsgType::FwdAck);
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_FALSE(acks[0].dirtyData);
}

TEST_F(L2BankUnit, FwdGetSOnOwnedLineExtractsThenRepliesDirty)
{
    coldWrite(8, 1);
    fab_.sent.clear();

    Msg fwd;
    fwd.type = MsgType::FwdGetS;
    fwd.block = 8;
    fwd.reqBankTile = 10;
    fwd.reqGroup = 2;
    bank_.handle(fwd);
    fab_.drainEvents();
    ASSERT_EQ(fab_.ofType(MsgType::L1WbReq).size(), 1u);
    EXPECT_TRUE(fab_.ofType(MsgType::Data).empty());

    Msg wb;
    wb.type = MsgType::L1WbData;
    wb.block = 8;
    wb.srcTile = 1;
    bank_.handle(wb);
    fab_.drainEvents();
    const auto data = fab_.ofType(MsgType::Data);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_TRUE(data[0].dirtyData);
    ASSERT_EQ(fab_.ofType(MsgType::FwdAck).size(), 1u);
    EXPECT_TRUE(fab_.ofType(MsgType::FwdAck)[0].dirtyData);
}

TEST_F(L2BankUnit, FwdGetMSurrendersLineAndBackInvalidates)
{
    coldRead(8, 1, L2State::Shared);
    bank_.handle(l1Req(MsgType::L1GetS, 8, 4));
    fab_.drainEvents();
    fab_.sent.clear();

    Msg fwd;
    fwd.type = MsgType::FwdGetM;
    fwd.block = 8;
    fwd.reqBankTile = 10;
    fwd.reqGroup = 2;
    bank_.handle(fwd);
    fab_.drainEvents();
    EXPECT_EQ(fab_.ofType(MsgType::Data).size(), 1u);
    EXPECT_EQ(fab_.ofType(MsgType::L1Inv).size(), 2u);

    // The line is gone: a new local read must miss to the home.
    fab_.sent.clear();
    bank_.handle(l1Req(MsgType::L1GetS, 8, 1));
    fab_.drainEvents();
    EXPECT_EQ(fab_.ofType(MsgType::GetS).size(), 1u);
}

TEST_F(L2BankUnit, InvDropsLineAndAcks)
{
    coldRead(8, 1, L2State::Shared);
    fab_.sent.clear();

    Msg inv;
    inv.type = MsgType::Inv;
    inv.block = 8;
    bank_.handle(inv);
    fab_.drainEvents();
    EXPECT_EQ(fab_.ofType(MsgType::InvAck).size(), 1u);
    EXPECT_EQ(fab_.ofType(MsgType::L1Inv).size(), 1u);
    EXPECT_EQ(bank_.bankStats().invsReceived.value(), 1u);
}

TEST_F(L2BankUnit, ConflictFillEvictsWithPutAndWbWindow)
{
    // 2048 sets per bank; blocks 4*k*2048 collide in set 0. Fill
    // assoc+1 = 9 blocks to force one eviction.
    const BlockAddr stride = 4 * 2048;
    for (int i = 0; i < 8; ++i)
        coldRead(i * stride, 1, L2State::Shared);
    fab_.sent.clear();

    coldRead(8 * stride, 1, L2State::Shared);
    // One clean eviction must have gone to the victim's home.
    ASSERT_EQ(fab_.ofType(MsgType::PutS).size(), 1u);
    const BlockAddr victim = fab_.ofType(MsgType::PutS)[0].block;
    EXPECT_EQ(bank_.bankStats().evictClean.value(), 1u);
    EXPECT_FALSE(bank_.idle()); // writeback entry outstanding

    // A request for the victim block during the window queues...
    fab_.sent.clear();
    bank_.handle(l1Req(MsgType::L1GetS, victim, 4));
    fab_.drainEvents();
    EXPECT_TRUE(fab_.ofType(MsgType::GetS).empty());

    // ...until the PutAck releases it.
    Msg ack;
    ack.type = MsgType::PutAck;
    ack.block = victim;
    bank_.handle(ack);
    fab_.drainEvents();
    EXPECT_EQ(fab_.ofType(MsgType::GetS).size(), 1u);
}

TEST_F(L2BankUnit, DirtyEvictionSendsPutM)
{
    const BlockAddr stride = 4 * 2048;
    coldWrite(0, 1);
    // Pull the dirty data back to the L2 so the line (not the L1)
    // holds it: another member reads it.
    bank_.handle(l1Req(MsgType::L1GetS, 0, 4));
    fab_.drainEvents();
    Msg wb;
    wb.type = MsgType::L1WbData;
    wb.block = 0;
    wb.srcTile = 1;
    bank_.handle(wb);
    fab_.drainEvents();

    for (int i = 1; i <= 8; ++i)
        coldRead(i * stride, 1, L2State::Shared);
    EXPECT_EQ(fab_.ofType(MsgType::PutM).size(), 1u);
    EXPECT_EQ(bank_.bankStats().evictDirty.value(), 1u);
}

TEST_F(L2BankUnit, FwdServedFromWritebackBuffer)
{
    const BlockAddr stride = 4 * 2048;
    for (int i = 0; i < 9; ++i)
        coldRead(i * stride, 1, L2State::Shared);
    const auto puts = fab_.ofType(MsgType::PutS);
    ASSERT_EQ(puts.size(), 1u);
    const BlockAddr victim = puts[0].block;
    fab_.sent.clear();

    // A forward for the evicting block must be served from the
    // writeback buffer (the home still thinks we hold it).
    Msg fwd;
    fwd.type = MsgType::FwdGetS;
    fwd.block = victim;
    fwd.reqBankTile = 10;
    fwd.reqGroup = 2;
    bank_.handle(fwd);
    fab_.drainEvents();
    EXPECT_EQ(fab_.ofType(MsgType::Data).size(), 1u);
    EXPECT_EQ(fab_.ofType(MsgType::FwdAck).size(), 1u);
}

TEST_F(L2BankUnit, RequestsForBusyBlockSerialize)
{
    bank_.handle(l1Req(MsgType::L1GetS, 8, 1));
    bank_.handle(l1Req(MsgType::L1GetS, 8, 4));
    bank_.handle(l1Req(MsgType::L1GetS, 8, 5));
    fab_.drainEvents();
    // Exactly one home request despite three local misses.
    EXPECT_EQ(fab_.ofType(MsgType::GetS).size(), 1u);
    grantAndData(8, L2State::Exclusive);
    // First requester filled; the queued ones now hit locally.
    EXPECT_EQ(fab_.ofType(MsgType::L1Data).size(), 3u);
    EXPECT_TRUE(bank_.idle());
}

TEST_F(L2BankUnit, C2cStatisticsAttributedOnFill)
{
    bank_.handle(l1Req(MsgType::L1GetS, 8, 1));
    fab_.drainEvents();
    grantAndData(8, L2State::Shared, false, /*c2c=*/true,
                 /*dirty=*/true);
    EXPECT_EQ(fab_.c2cDirty, 1);
    EXPECT_EQ(fab_.c2cClean, 0);
    EXPECT_EQ(fab_.l2Misses, 1);
}

} // namespace
} // namespace consim
