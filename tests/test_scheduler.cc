/**
 * @file
 * Tests for the hypervisor scheduling policies: spread/pack
 * properties, determinism, capacity limits, and the Table IV mixes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/mix.hh"
#include "core/scheduler.hh"

namespace consim
{
namespace
{

MachineConfig
machineWith(SharingDegree d)
{
    MachineConfig cfg;
    cfg.sharing = d;
    return cfg;
}

/** groups used by each VM: vm -> set of groups. */
std::map<VmId, std::set<GroupId>>
groupsPerVm(const MachineConfig &cfg,
            const std::vector<ThreadPlacement> &ps)
{
    std::map<VmId, std::set<GroupId>> out;
    for (const auto &p : ps)
        out[p.vm].insert(cfg.groupOfCore(p.core));
    return out;
}

TEST(Scheduler, NoCoreDoubleBooked)
{
    const auto cfg = machineWith(SharingDegree::Shared4);
    for (auto pol : {SchedPolicy::RoundRobin, SchedPolicy::Affinity,
                     SchedPolicy::AffinityRR, SchedPolicy::Random}) {
        const auto ps = scheduleThreads(cfg, {4, 4, 4, 4}, pol, 1);
        std::set<CoreId> cores;
        for (const auto &p : ps)
            EXPECT_TRUE(cores.insert(p.core).second);
        EXPECT_EQ(ps.size(), 16u);
    }
}

TEST(Scheduler, RoundRobinSpreadsEachVmAcrossGroups)
{
    const auto cfg = machineWith(SharingDegree::Shared4);
    const auto ps = scheduleThreads(cfg, {4, 4, 4, 4},
                                    SchedPolicy::RoundRobin, 1);
    for (const auto &[vm, groups] : groupsPerVm(cfg, ps))
        EXPECT_EQ(groups.size(), 4u) << "vm " << vm;
}

TEST(Scheduler, RoundRobinGivesEachGroupOneThreadPerVm)
{
    const auto cfg = machineWith(SharingDegree::Shared4);
    const auto ps = scheduleThreads(cfg, {4, 4, 4, 4},
                                    SchedPolicy::RoundRobin, 1);
    // count (vm, group) pairs
    std::map<std::pair<VmId, GroupId>, int> count;
    for (const auto &p : ps)
        ++count[{p.vm, cfg.groupOfCore(p.core)}];
    for (const auto &[key, n] : count)
        EXPECT_EQ(n, 1);
}

TEST(Scheduler, AffinityPacksEachVmIntoOneQuadrant)
{
    const auto cfg = machineWith(SharingDegree::Shared4);
    const auto ps = scheduleThreads(cfg, {4, 4, 4, 4},
                                    SchedPolicy::Affinity, 1);
    for (const auto &[vm, groups] : groupsPerVm(cfg, ps))
        EXPECT_EQ(groups.size(), 1u) << "vm " << vm;
}

TEST(Scheduler, AffinityIsolationUsesMinimalGroups)
{
    // One 4-thread workload, shared-8-way: all threads in one group.
    const auto cfg = machineWith(SharingDegree::Shared8);
    const auto ps =
        scheduleThreads(cfg, {4}, SchedPolicy::Affinity, 1);
    EXPECT_EQ(groupsPerVm(cfg, ps)[0].size(), 1u);
}

TEST(Scheduler, RoundRobinIsolationSpreads)
{
    const auto cfg = machineWith(SharingDegree::Shared8);
    const auto ps =
        scheduleThreads(cfg, {4}, SchedPolicy::RoundRobin, 1);
    // 2 groups exist; 4 threads alternate between them.
    EXPECT_EQ(groupsPerVm(cfg, ps)[0].size(), 2u);
}

TEST(Scheduler, AffinityRrPlacesPairs)
{
    const auto cfg = machineWith(SharingDegree::Shared4);
    const auto ps = scheduleThreads(cfg, {4, 4, 4, 4},
                                    SchedPolicy::AffinityRR, 1);
    // Each VM should span exactly 2 groups (two pairs).
    for (const auto &[vm, groups] : groupsPerVm(cfg, ps))
        EXPECT_EQ(groups.size(), 2u) << "vm " << vm;
    // And each group must hold exactly 2 threads of each VM present.
    std::map<std::pair<VmId, GroupId>, int> count;
    for (const auto &p : ps)
        ++count[{p.vm, cfg.groupOfCore(p.core)}];
    for (const auto &[key, n] : count)
        EXPECT_EQ(n, 2);
}

TEST(Scheduler, RandomIsSeedDeterministic)
{
    const auto cfg = machineWith(SharingDegree::Shared4);
    const auto a = scheduleThreads(cfg, {4, 4, 4, 4},
                                   SchedPolicy::Random, 7);
    const auto b = scheduleThreads(cfg, {4, 4, 4, 4},
                                   SchedPolicy::Random, 7);
    const auto c = scheduleThreads(cfg, {4, 4, 4, 4},
                                   SchedPolicy::Random, 8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].core, b[i].core);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].core != c[i].core;
    EXPECT_TRUE(any_diff);
}

TEST(Scheduler, PrivateCachesDegenerate)
{
    // With private caches every thread has its own "group"; all
    // policies must still produce valid full placements.
    const auto cfg = machineWith(SharingDegree::Private);
    for (auto pol : {SchedPolicy::RoundRobin, SchedPolicy::Affinity,
                     SchedPolicy::AffinityRR, SchedPolicy::Random}) {
        const auto ps = scheduleThreads(cfg, {4, 4, 4, 4}, pol, 3);
        EXPECT_EQ(ps.size(), 16u);
    }
}

TEST(Scheduler, FullySharedSingleGroup)
{
    const auto cfg = machineWith(SharingDegree::Shared16);
    const auto ps = scheduleThreads(cfg, {4, 4, 4, 4},
                                    SchedPolicy::RoundRobin, 1);
    for (const auto &p : ps)
        EXPECT_EQ(cfg.groupOfCore(p.core), 0);
}

TEST(Scheduler, OverCommitLayersBalanced)
{
    // 20 threads on 16 cores: every core receives a first thread
    // before any receives a second, and nobody holds a third.
    const auto cfg = machineWith(SharingDegree::Shared4);
    const auto out =
        scheduleThreads(cfg, {4, 4, 4, 4, 4}, SchedPolicy::Affinity, 1);
    ASSERT_EQ(out.size(), 20u);
    std::vector<int> perCore(cfg.numCores(), 0);
    for (const auto &p : out)
        ++perCore[p.core];
    for (int c = 0; c < cfg.numCores(); ++c) {
        EXPECT_GE(perCore[c], 1) << "core " << c << " left idle";
        EXPECT_LE(perCore[c], 2) << "core " << c << " over-booked";
    }
}

TEST(Scheduler, OverCommitEveryPolicyBalanced)
{
    const auto cfg = machineWith(SharingDegree::Shared4);
    for (const auto policy :
         {SchedPolicy::RoundRobin, SchedPolicy::Affinity,
          SchedPolicy::AffinityRR, SchedPolicy::Random}) {
        const auto out =
            scheduleThreads(cfg, {16, 16, 3}, policy, 7);
        ASSERT_EQ(out.size(), 35u);
        std::vector<int> perCore(cfg.numCores(), 0);
        for (const auto &p : out)
            ++perCore[p.core];
        for (int c = 0; c < cfg.numCores(); ++c) {
            EXPECT_GE(perCore[c], 2);
            EXPECT_LE(perCore[c], 3);
        }
    }
}

TEST(Scheduler, RandomOverCommitLayersHeterogeneous)
{
    // Audit pin: under Random with uneven --vm-threads vectors the
    // over-commit layering contract must hold *at every prefix* of
    // the placement order — a core may only receive its (k+1)-th
    // thread once every core holds k. scheduleRandom walks a single
    // shuffled permutation modulo the core count, so a violation
    // would mean the permutation wrap regressed.
    const auto cfg = machineWith(SharingDegree::Shared4);
    const std::vector<std::vector<int>> shapes = {
        {1, 7, 2, 16, 5},  // 31 threads: mid-layer boundary inside VM 3
        {3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 2}, // 35, many small VMs
        {16, 1, 16, 1},    // giant VMs straddling layer boundaries
        {2, 4, 8, 0, 1},   // a zero-thread VM in the middle
    };
    for (const auto &shape : shapes) {
        for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
            const auto out =
                scheduleThreads(cfg, shape, SchedPolicy::Random, seed);
            std::vector<int> perCore(cfg.numCores(), 0);
            for (std::size_t i = 0; i < out.size(); ++i) {
                const int before = perCore[out[i].core];
                const int low = *std::min_element(perCore.begin(),
                                                  perCore.end());
                EXPECT_EQ(before, low)
                    << "placement " << i << " (seed " << seed
                    << ") started layer " << before + 1 << " on core "
                    << out[i].core << " while another core still has "
                    << low << " threads";
                ++perCore[out[i].core];
            }
        }
    }
}

TEST(Mix, TableIvHeterogeneousComposition)
{
    const auto &mixes = Mix::heterogeneous();
    ASSERT_EQ(mixes.size(), 9u);
    EXPECT_EQ(mixes[0].count(WorkloadKind::TpcW), 3);
    EXPECT_EQ(mixes[0].count(WorkloadKind::TpcH), 1);
    EXPECT_EQ(mixes[4].count(WorkloadKind::SpecJbb), 2);
    EXPECT_EQ(mixes[4].count(WorkloadKind::TpcH), 2);
    EXPECT_EQ(mixes[8].count(WorkloadKind::SpecJbb), 1);
    EXPECT_EQ(mixes[8].count(WorkloadKind::TpcW), 3);
    for (const auto &m : mixes)
        EXPECT_EQ(m.vms.size(), 4u);
}

TEST(Mix, TableIvHomogeneousComposition)
{
    const auto &mixes = Mix::homogeneous();
    ASSERT_EQ(mixes.size(), 4u);
    EXPECT_EQ(mixes[0].count(WorkloadKind::TpcW), 4);
    EXPECT_EQ(mixes[1].count(WorkloadKind::TpcH), 4);
    EXPECT_EQ(mixes[2].count(WorkloadKind::SpecJbb), 4);
    EXPECT_EQ(mixes[3].count(WorkloadKind::SpecWeb), 4);
}

TEST(Mix, ByName)
{
    EXPECT_EQ(Mix::byName("Mix 7").count(WorkloadKind::SpecJbb), 3);
    EXPECT_EQ(Mix::byName("Mix C").name, "Mix C");
}

} // namespace
} // namespace consim
