/**
 * @file
 * Tests for the workload models: profile consistency with the paper's
 * Table II, stream determinism, address-window containment, region
 * behaviour, and transaction marking.
 */

#include <gtest/gtest.h>

#include <set>

#include "coherence/directory.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace consim
{
namespace
{

TEST(Profile, FootprintsMatchPaperTable2)
{
    // Model footprints must equal the paper's block counts within 1%.
    for (const auto &p : WorkloadProfile::all()) {
        EXPECT_NEAR(static_cast<double>(p.totalBlocks()),
                    static_cast<double>(p.paperBlocks),
                    0.01 * static_cast<double>(p.paperBlocks))
            << p.name;
    }
}

TEST(Profile, PaperTargetsRecorded)
{
    const auto &h = WorkloadProfile::get(WorkloadKind::TpcH);
    EXPECT_DOUBLE_EQ(h.paperC2cAll, 0.69);
    EXPECT_DOUBLE_EQ(h.paperC2cDirty, 0.57);
    const auto &w = WorkloadProfile::get(WorkloadKind::TpcW);
    EXPECT_EQ(w.paperBlocks, 1'125'000u);
}

TEST(Profile, RelativeFootprintOrdering)
{
    // TPC-W > SPECweb > SPECjbb > TPC-H, as in Table II.
    const auto w = WorkloadProfile::get(WorkloadKind::TpcW).totalBlocks();
    const auto web =
        WorkloadProfile::get(WorkloadKind::SpecWeb).totalBlocks();
    const auto jbb =
        WorkloadProfile::get(WorkloadKind::SpecJbb).totalBlocks();
    const auto h = WorkloadProfile::get(WorkloadKind::TpcH).totalBlocks();
    EXPECT_GT(w, web);
    EXPECT_GT(web, jbb);
    EXPECT_GT(jbb, h);
}

TEST(Profile, MixFractionsAreSane)
{
    for (const auto &p : WorkloadProfile::all()) {
        EXPECT_GT(p.pSharedRo, 0.0) << p.name;
        EXPECT_GT(p.pMigratory, 0.0) << p.name;
        EXPECT_LT(p.pSharedRo + p.pMigratory, 1.0) << p.name;
        EXPECT_GT(p.refsPerTransaction, 0u) << p.name;
        EXPECT_LE(p.computeMin, p.computeMax) << p.name;
    }
}

TEST(Profile, TpcHIsMostMigratory)
{
    const auto &h = WorkloadProfile::get(WorkloadKind::TpcH);
    for (const auto &p : WorkloadProfile::all()) {
        if (p.kind != WorkloadKind::TpcH) {
            EXPECT_GT(h.pMigratory, p.pMigratory) << p.name;
        }
    }
}

TEST(Stream, Deterministic)
{
    const auto &p = WorkloadProfile::get(WorkloadKind::SpecJbb);
    SyntheticStream a(p, 0, 1, 42, nullptr);
    SyntheticStream b(p, 0, 1, 42, nullptr);
    for (int i = 0; i < 5000; ++i) {
        const auto sa = a.next();
        const auto sb = b.next();
        EXPECT_EQ(sa.block, sb.block);
        EXPECT_EQ(sa.isWrite, sb.isWrite);
        EXPECT_EQ(sa.computeCycles, sb.computeCycles);
        EXPECT_EQ(sa.endsTransaction, sb.endsTransaction);
    }
}

TEST(Stream, SeedsDiffer)
{
    const auto &p = WorkloadProfile::get(WorkloadKind::SpecJbb);
    SyntheticStream a(p, 0, 1, 42, nullptr);
    SyntheticStream b(p, 0, 1, 43, nullptr);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().block == b.next().block ? 1 : 0;
    EXPECT_LT(same, 100);
}

TEST(Stream, AddressesStayInVmWindow)
{
    const auto &p = WorkloadProfile::get(WorkloadKind::TpcW);
    const VmId vm = 3;
    SyntheticStream s(p, vm, 2, 9, nullptr);
    for (int i = 0; i < 20000; ++i) {
        const auto b = s.next().block;
        EXPECT_EQ(static_cast<VmId>(b >> vmSpanBits), vm);
        EXPECT_LT(b - vmBaseBlock(vm), p.totalBlocks());
    }
}

TEST(Stream, ThreadsSeparatePrivateRegions)
{
    // Private-region addresses of different threads must not overlap.
    const auto &p = WorkloadProfile::get(WorkloadKind::TpcH);
    const std::uint64_t shared_end =
        p.sharedRoBlocks + p.migratoryBlocks;
    SyntheticStream t0(p, 0, 0, 5, nullptr);
    SyntheticStream t1(p, 0, 1, 5, nullptr);
    std::set<std::uint64_t> p0, p1;
    for (int i = 0; i < 30000; ++i) {
        const auto a = t0.next().block - vmBaseBlock(0);
        const auto b = t1.next().block - vmBaseBlock(0);
        if (a >= shared_end)
            p0.insert(a);
        if (b >= shared_end)
            p1.insert(b);
    }
    for (auto a : p0)
        EXPECT_EQ(p1.count(a), 0u);
}

TEST(Stream, SharedRegionIsShared)
{
    // Different threads must touch common shared-RO blocks.
    const auto &p = WorkloadProfile::get(WorkloadKind::SpecJbb);
    SyntheticStream t0(p, 0, 0, 5, nullptr);
    SyntheticStream t1(p, 0, 1, 5, nullptr);
    std::set<std::uint64_t> s0, s1;
    for (int i = 0; i < 30000; ++i) {
        const auto a = t0.next().block - vmBaseBlock(0);
        const auto b = t1.next().block - vmBaseBlock(0);
        if (a < p.sharedRoBlocks)
            s0.insert(a);
        if (b < p.sharedRoBlocks)
            s1.insert(b);
    }
    int common = 0;
    for (auto a : s0)
        common += s1.count(a) ? 1 : 0;
    EXPECT_GT(common, 100);
}

TEST(Stream, SharedRoIsReadOnly)
{
    const auto &p = WorkloadProfile::get(WorkloadKind::SpecWeb);
    SyntheticStream s(p, 0, 0, 5, nullptr);
    for (int i = 0; i < 50000; ++i) {
        const auto slice = s.next();
        const auto off = slice.block - vmBaseBlock(0);
        if (off < p.sharedRoBlocks) {
            EXPECT_FALSE(slice.isWrite);
        }
    }
}

TEST(Stream, MigratoryRegionHasWrites)
{
    const auto &p = WorkloadProfile::get(WorkloadKind::TpcH);
    SyntheticStream s(p, 0, 0, 5, nullptr);
    int mig_writes = 0, mig_refs = 0;
    for (int i = 0; i < 100000; ++i) {
        const auto slice = s.next();
        const auto off = slice.block - vmBaseBlock(0);
        if (off >= p.sharedRoBlocks &&
            off < p.sharedRoBlocks + p.migratoryBlocks) {
            ++mig_refs;
            mig_writes += slice.isWrite ? 1 : 0;
        }
    }
    EXPECT_GT(mig_refs, 1000);
    EXPECT_NEAR(static_cast<double>(mig_writes) / mig_refs,
                p.migratoryWriteFraction, 0.05);
}

TEST(Stream, TransactionsMarkedAtConfiguredLength)
{
    const auto &p = WorkloadProfile::get(WorkloadKind::SpecWeb);
    SyntheticStream s(p, 0, 0, 5, nullptr);
    int refs = 0, txns = 0;
    for (int i = 0; i < 50000; ++i) {
        ++refs;
        if (s.next().endsTransaction)
            ++txns;
    }
    EXPECT_EQ(txns, refs / static_cast<int>(p.refsPerTransaction));
}

TEST(Stream, ComputeCyclesWithinBounds)
{
    const auto &p = WorkloadProfile::get(WorkloadKind::TpcW);
    SyntheticStream s(p, 0, 0, 5, nullptr);
    for (int i = 0; i < 10000; ++i) {
        const auto c = s.next().computeCycles;
        EXPECT_GE(c, p.computeMin);
        EXPECT_LE(c, p.computeMax);
    }
}

TEST(Footprint, TracksDistinctBlocks)
{
    Footprint f(100);
    f.touch(1);
    f.touch(1);
    f.touch(2);
    f.touch(99);
    EXPECT_EQ(f.distinctBlocks(), 3u);
}

TEST(Footprint, InstanceCoverageGrowsTowardsFootprint)
{
    // A long stream should cover most of TPC-H's small footprint.
    const auto &p = WorkloadProfile::get(WorkloadKind::TpcH);
    WorkloadInstance inst(p, 0, 3);
    for (int t = 0; t < p.numThreads; ++t) {
        auto &s = inst.thread(t);
        for (int i = 0; i < 400000; ++i)
            s.next();
    }
    // Coverage is driven by the cold tail; it must clearly exceed
    // the hot sets but full coverage takes far longer than a test.
    EXPECT_GT(inst.distinctBlocks(),
              p.hotSharedBlocks + 4 * p.hotPrivateBlocks +
                  p.migratoryBlocks);
    EXPECT_LE(inst.distinctBlocks(), p.totalBlocks());
}

TEST(Stream, HotWindowSlidesOverTime)
{
    // With sliding enabled, long-horizon accesses cover far more of
    // the shared region than one static hot window would.
    const auto &p = WorkloadProfile::get(WorkloadKind::SpecJbb);
    SyntheticStream s(p, 0, 0, 11, nullptr);
    std::set<std::uint64_t> shared_seen;
    for (int i = 0; i < 300000; ++i) {
        const auto off = s.next().block - vmBaseBlock(0);
        if (off < p.sharedRoBlocks)
            shared_seen.insert(off);
    }
    EXPECT_GT(shared_seen.size(), p.hotSharedBlocks);
}

} // namespace
} // namespace consim
