/**
 * @file
 * Property tests for the mesh interconnect, swept over virtual
 * channel configurations with parameterized gtest: packet
 * conservation under sustained random traffic, bounded latency after
 * drain, and per-vnet isolation.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/config.hh"
#include "common/rng.hh"
#include "noc/mesh.hh"

namespace consim
{
namespace
{

struct NocConfig
{
    int vcsPerVnet;
    int vcBufferFlits;
    double dataFraction;
    int packets;
};

class MeshProperty : public ::testing::TestWithParam<NocConfig>
{
};

TEST_P(MeshProperty, ConservesAllPacketsUnderRandomLoad)
{
    const auto param = GetParam();
    MachineConfig cfg;
    cfg.vcsPerVnet = param.vcsPerVnet;
    cfg.vcBufferFlits = param.vcBufferFlits;
    Mesh mesh(cfg);

    std::map<BlockAddr, int> outstanding;
    int delivered = 0;
    mesh.setDeliver([&](const Msg &m) {
        ++delivered;
        auto it = outstanding.find(m.block);
        ASSERT_NE(it, outstanding.end()) << "phantom packet";
        if (--it->second == 0)
            outstanding.erase(it);
    });

    Rng rng(param.packets * 31 + param.vcsPerVnet);
    Cycle now = 0;
    int injected = 0;
    BlockAddr tag = 0;
    // Sustained injection: a few packets per cycle chip-wide.
    while (injected < param.packets) {
        for (int k = 0; k < 3 && injected < param.packets; ++k) {
            const auto src = static_cast<CoreId>(rng.below(16));
            const auto dst = static_cast<CoreId>(rng.below(16));
            if (src == dst)
                continue;
            Msg m;
            // Mix all three vnets and both sizes.
            const double r = rng.uniform();
            if (r < param.dataFraction)
                m.type = MsgType::Data; // vnet 2, 5 flits
            else if (r < param.dataFraction + 0.3)
                m.type = MsgType::GetS; // vnet 0, 1 flit
            else
                m.type = MsgType::Inv; // vnet 1, 1 flit
            m.srcTile = src;
            m.dstTile = dst;
            m.block = tag++;
            m.injectCycle = now;
            mesh.inject(m);
            ++outstanding[m.block];
            ++injected;
        }
        mesh.tick(now++);
    }
    // Drain.
    for (int i = 0; i < 50'000 && !mesh.idle(); ++i)
        mesh.tick(now++);
    EXPECT_TRUE(mesh.idle()) << "packets stuck in the mesh";
    EXPECT_EQ(delivered, injected);
    EXPECT_TRUE(outstanding.empty());
    EXPECT_EQ(mesh.netStats().packetsEjected.value(),
              static_cast<std::uint64_t>(injected));
}

INSTANTIATE_TEST_SUITE_P(
    VcSweep, MeshProperty,
    ::testing::Values(NocConfig{1, 5, 0.3, 800},
                      NocConfig{1, 8, 0.7, 800},
                      NocConfig{2, 4, 0.3, 1500},
                      NocConfig{2, 8, 0.5, 1500},
                      NocConfig{4, 8, 0.3, 2000},
                      NocConfig{4, 16, 0.9, 2000}),
    [](const ::testing::TestParamInfo<NocConfig> &info) {
        return "vc" + std::to_string(info.param.vcsPerVnet) + "_buf" +
               std::to_string(info.param.vcBufferFlits) + "_d" +
               std::to_string(
                   static_cast<int>(info.param.dataFraction * 10)) +
               "_n" + std::to_string(info.param.packets);
    });

TEST(MeshLatencyProperty, UncontendedLatencyTracksHopCount)
{
    MachineConfig cfg;
    Mesh mesh(cfg);
    Cycle delivered_at = 0;
    mesh.setDeliver([&](const Msg &) {});

    // For each src/dst pair, an uncontended control packet's latency
    // must be a monotone-ish function of hop distance: check that
    // max-latency(dist d) < min-latency(dist d+3) never inverts
    // wildly by sampling all pairs.
    std::map<int, std::pair<Cycle, Cycle>> by_dist; // min,max
    Cycle now = 0;
    for (CoreId s = 0; s < 16; ++s) {
        for (CoreId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            Msg m;
            m.type = MsgType::GetS;
            m.srcTile = s;
            m.dstTile = d;
            m.injectCycle = now;
            bool got = false;
            mesh.setDeliver([&](const Msg &) {
                got = true;
                delivered_at = now;
            });
            mesh.inject(m);
            const Cycle start = now;
            while (!got)
                mesh.tick(now++);
            const Cycle lat = delivered_at - start;
            const int dist = hopDistance(s, d, cfg.meshX);
            auto it = by_dist.find(dist);
            if (it == by_dist.end()) {
                by_dist[dist] = {lat, lat};
            } else {
                it->second.first = std::min(it->second.first, lat);
                it->second.second = std::max(it->second.second, lat);
            }
        }
    }
    // Latency grows with distance (allowing per-hop pipeline noise).
    Cycle prev_min = 0;
    for (const auto &[dist, mm] : by_dist) {
        EXPECT_GE(mm.first, prev_min);
        prev_min = mm.first;
        // Uncontended 1-flit latency stays within a sane budget:
        // ~4 cycles per hop plus ejection.
        EXPECT_LE(mm.second,
                  static_cast<Cycle>(4 * dist + 10));
    }
}

} // namespace
} // namespace consim
