/**
 * @file
 * Tests for the reporting layer (bench harness support): table
 * separators and formatting edge cases, section headers, bench seed
 * parsing, and logging verbosity control.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/report.hh"

namespace consim
{
namespace
{

TEST(TableEdge, SeparatorsRenderAsRules)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    t.addSeparator();
    t.addRow({"3", "4"});
    std::ostringstream os;
    t.print(os);
    // Box: top, header, rule, row, separator, row, bottom = 4 rules.
    int rules = 0;
    std::istringstream in(os.str());
    std::string line;
    while (std::getline(in, line))
        rules += line.rfind("+--", 0) == 0 ? 1 : 0;
    EXPECT_EQ(rules, 4);
}

TEST(TableEdge, WideCellsStretchColumns)
{
    TextTable t({"x"});
    t.addRow({"abcdefghijklmnop"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("abcdefghijklmnop"), std::string::npos);
}

TEST(TableEdge, NumericFormatting)
{
    EXPECT_EQ(TextTable::num(0.0, 2), "0.00");
    EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
    EXPECT_EQ(TextTable::num(123456.789, 0), "123457");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
    EXPECT_EQ(TextTable::pct(0.005, 1), "0.5%");
}

TEST(TableEdgeDeathTest, WrongArityPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(Report, HeaderContainsAllParts)
{
    std::ostringstream os;
    printHeader(os, "Title X", "Figure 99", "the shape");
    const auto s = os.str();
    EXPECT_NE(s.find("Title X"), std::string::npos);
    EXPECT_NE(s.find("Figure 99"), std::string::npos);
    EXPECT_NE(s.find("the shape"), std::string::npos);
}

TEST(Report, BenchSeedsNonEmptyAndDistinct)
{
    const auto &seeds = benchSeeds();
    ASSERT_FALSE(seeds.empty());
    for (std::size_t i = 1; i < seeds.size(); ++i)
        EXPECT_NE(seeds[i], seeds[i - 1]);
}

TEST(Logging, VerbosityToggle)
{
    const bool was = logging::verbose();
    logging::setVerbose(false);
    EXPECT_FALSE(logging::verbose());
    logging::setVerbose(true);
    EXPECT_TRUE(logging::verbose());
    logging::setVerbose(was);
}

TEST(Logging, FormatConcatenates)
{
    EXPECT_EQ(logging::format("a", 1, "b", 2.5), "a1b2.5");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(CONSIM_PANIC("boom ", 42), "boom 42");
}

TEST(LoggingDeathTest, AssertCarriesContext)
{
    const int x = 3;
    EXPECT_DEATH(CONSIM_ASSERT(x == 4, "x was ", x), "x was 3");
}

} // namespace
} // namespace consim
