/**
 * @file
 * Shared test double: a hand-cranked Fabric that records every sent
 * message and runs scheduled events on demand, plus helpers to
 * inspect the traffic. Used by the coherence unit test suites.
 */

#ifndef CONSIM_TESTS_MOCK_FABRIC_HH
#define CONSIM_TESTS_MOCK_FABRIC_HH

#include <algorithm>
#include <functional>
#include <queue>
#include <vector>

#include "coherence/directory.hh"
#include "coherence/fabric.hh"

namespace consim
{

/** A hand-cranked Fabric: records sends, runs scheduled events. */
class MockFabric : public Fabric
{
  public:
    MockFabric() { cfg_.validate(); }

    Cycle now() const override { return now_; }

    void send(Msg m) override { sent.push_back(std::move(m)); }

    void
    schedule(Cycle delay, EventFn fn) override
    {
        events_.push({now_ + delay, seq_++, std::move(fn)});
    }

    const MachineConfig &config() const override { return cfg_; }

    GroupId groupOfTile(CoreId tile) const override
    {
        return cfg_.groupOfCore(tile);
    }

    CoreId
    bankTileFor(GroupId g, BlockAddr block) const override
    {
        const auto members = cfg_.coresOfGroup(g);
        return members[block % members.size()];
    }

    CoreId homeTileFor(BlockAddr) const override { return 0; }
    CoreId memTileFor(BlockAddr) const override { return 15; }

    VmId vmOfBlock(BlockAddr block) const override
    {
        return static_cast<VmId>(block >> vmSpanBits);
    }

    void recordL2Access(VmId) override { ++l2Accesses; }
    void
    recordL2Miss(VmId, bool c2c, bool dirty) override
    {
        ++l2Misses;
        if (c2c)
            ++(dirty ? c2cDirty : c2cClean);
    }
    void
    recordL1Miss(VmId, Cycle lat) override
    {
        ++l1Misses;
        lastMissLatency = lat;
    }
    void recordTransaction(VmId) override { ++transactions; }
    void recordInstructions(VmId, std::uint64_t n) override
    {
        instructions += n;
    }

    /** Advance until all scheduled events have run. */
    void
    drainEvents(Cycle max_cycles = 10'000)
    {
        const Cycle end = now_ + max_cycles;
        while (!events_.empty() && now_ < end) {
            now_ = std::max(now_ + 1, events_.top().when);
            while (!events_.empty() && events_.top().when <= now_) {
                auto fn = std::move(
                    const_cast<Event &>(events_.top()).fn);
                events_.pop();
                fn();
            }
        }
    }

    /** @return sent messages of one type. */
    std::vector<Msg>
    ofType(MsgType t) const
    {
        std::vector<Msg> out;
        for (const auto &m : sent) {
            if (m.type == t)
                out.push_back(m);
        }
        return out;
    }

    MachineConfig cfg_;
    std::vector<Msg> sent;

    // recorded stats hooks
    int l2Accesses = 0;
    int l2Misses = 0;
    int c2cClean = 0;
    int c2cDirty = 0;
    int l1Misses = 0;
    int transactions = 0;
    std::uint64_t instructions = 0;
    Cycle lastMissLatency = 0;

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        EventFn fn;
        bool operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };
    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
};

} // namespace consim

#endif // CONSIM_TESTS_MOCK_FABRIC_HH
