/**
 * @file
 * Tests for the metrics layer: VmStats derived quantities, RunResult
 * aggregation helpers, multi-seed averaging, snapshot math, and the
 * experiment-level config helpers.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/system.hh"

namespace consim
{
namespace
{

TEST(VmStatsTest, MissRate)
{
    VmStats s;
    EXPECT_DOUBLE_EQ(s.missRate(), 0.0);
    s.l2Accesses += 100;
    s.l2Misses += 25;
    EXPECT_DOUBLE_EQ(s.missRate(), 0.25);
}

TEST(VmStatsTest, C2cFractions)
{
    VmStats s;
    EXPECT_DOUBLE_EQ(s.c2cFraction(), 0.0);
    EXPECT_DOUBLE_EQ(s.c2cDirtyShare(), 0.0);
    s.l2Misses += 100;
    s.c2cClean += 30;
    s.c2cDirty += 10;
    EXPECT_DOUBLE_EQ(s.c2cFraction(), 0.4);
    EXPECT_DOUBLE_EQ(s.c2cDirtyShare(), 0.25);
}

TEST(VmStatsTest, ResetClearsEverything)
{
    VmStats s;
    s.instructions += 5;
    s.l2Misses += 5;
    s.missLatency.sample(10.0);
    s.reset();
    EXPECT_EQ(s.instructions.value(), 0u);
    EXPECT_EQ(s.l2Misses.value(), 0u);
    EXPECT_EQ(s.missLatency.count(), 0u);
}

TEST(RunResultTest, MeansPerKind)
{
    RunResult r;
    VmResult a;
    a.kind = WorkloadKind::TpcH;
    a.cyclesPerTransaction = 100;
    a.missRate = 0.1;
    a.avgMissLatency = 50;
    VmResult b = a;
    b.cyclesPerTransaction = 300;
    b.missRate = 0.3;
    b.avgMissLatency = 150;
    VmResult c;
    c.kind = WorkloadKind::TpcW;
    c.cyclesPerTransaction = 999;
    r.vms = {a, b, c};

    EXPECT_DOUBLE_EQ(r.meanCyclesPerTxn(WorkloadKind::TpcH), 200.0);
    EXPECT_DOUBLE_EQ(r.meanMissRate(WorkloadKind::TpcH), 0.2);
    EXPECT_DOUBLE_EQ(r.meanMissLatency(WorkloadKind::TpcH), 100.0);
    EXPECT_DOUBLE_EQ(r.meanCyclesPerTxn(WorkloadKind::TpcW), 999.0);
    EXPECT_DOUBLE_EQ(r.meanCyclesPerTxn(WorkloadKind::SpecJbb), 0.0);
}

TEST(ReplicationSnapshotTest, Fractions)
{
    ReplicationSnapshot s;
    s.validLines = 100;
    s.replicatedLines = 40;
    s.validPerVm = {50, 50};
    s.replicatedPerVm = {40, 0};
    EXPECT_DOUBLE_EQ(s.replicatedFraction(), 0.4);
    EXPECT_DOUBLE_EQ(s.replicatedFractionVm(0), 0.8);
    EXPECT_DOUBLE_EQ(s.replicatedFractionVm(1), 0.0);
}

TEST(OccupancySnapshotTest, Shares)
{
    OccupancySnapshot s;
    s.lines = {{30, 10}, {0, 20}};
    s.capacity = {100, 100};
    EXPECT_DOUBLE_EQ(s.share(0, 0), 0.3);
    EXPECT_DOUBLE_EQ(s.share(0, 1), 0.1);
    EXPECT_DOUBLE_EQ(s.share(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(s.share(1, 1), 0.2);
}

TEST(ConfigHelpers, IsolationConfig)
{
    const RunConfig cfg =
        isolationConfig(WorkloadKind::TpcH, SchedPolicy::RoundRobin,
                        SharingDegree::Private);
    EXPECT_EQ(cfg.workloads.size(), 1u);
    EXPECT_EQ(cfg.workloads[0], WorkloadKind::TpcH);
    EXPECT_EQ(cfg.policy, SchedPolicy::RoundRobin);
    EXPECT_EQ(cfg.machine.sharing, SharingDegree::Private);
}

TEST(ConfigHelpers, MixConfig)
{
    const RunConfig cfg = mixConfig(Mix::byName("Mix 2"),
                                    SchedPolicy::Affinity,
                                    SharingDegree::Shared8);
    EXPECT_EQ(cfg.workloads.size(), 4u);
    EXPECT_EQ(cfg.machine.sharing, SharingDegree::Shared8);
}

TEST(ConfigHelpers, DefaultWindowsArePositive)
{
    EXPECT_GT(defaultWarmupCycles(), 0u);
    EXPECT_GT(defaultMeasureCycles(), 0u);
}

TEST(Averaging, MultiSeedAveragesMetrics)
{
    RunConfig cfg = isolationConfig(WorkloadKind::TpcH,
                                    SchedPolicy::Affinity,
                                    SharingDegree::Shared4);
    cfg.warmupCycles = 3'000;
    cfg.measureCycles = 10'000;
    const RunResult one = runExperiment(cfg);
    const RunResult avg = runAveraged(cfg, {1, 2, 3});
    ASSERT_EQ(avg.vms.size(), 1u);
    // Counters accumulate; rates average. The averaged rate must be
    // in the convex hull of per-seed rates, so just sanity-check it
    // is positive and the accumulation exceeded the single run.
    EXPECT_GT(avg.vms[0].l2Accesses, one.vms[0].l2Accesses);
    EXPECT_GT(avg.vms[0].avgMissLatency, 0.0);
}

TEST(Snapshots, EndToEndOccupancySumsBelowCapacity)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix 5"),
                              SchedPolicy::RoundRobin,
                              SharingDegree::Shared4);
    cfg.warmupCycles = 20'000;
    cfg.measureCycles = 20'000;
    const RunResult r = runExperiment(cfg);
    ASSERT_EQ(r.occupancy.capacity.size(), 4u);
    for (std::size_t g = 0; g < r.occupancy.lines.size(); ++g) {
        double total = 0.0;
        for (std::size_t vm = 0; vm < r.vms.size(); ++vm)
            total += r.occupancy.share(static_cast<GroupId>(g),
                                       static_cast<VmId>(vm));
        EXPECT_LE(total, 1.0 + 1e-9);
        EXPECT_GT(total, 0.0);
    }
}

TEST(Snapshots, ReplicationBoundedByValidLines)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix C"),
                              SchedPolicy::RoundRobin,
                              SharingDegree::Shared4);
    cfg.warmupCycles = 20'000;
    cfg.measureCycles = 20'000;
    const RunResult r = runExperiment(cfg);
    EXPECT_LE(r.replication.replicatedLines, r.replication.validLines);
    EXPECT_LE(r.replication.distinctBlocks, r.replication.validLines);
    EXPECT_GE(r.replication.replicatedFraction(), 0.0);
    EXPECT_LE(r.replication.replicatedFraction(), 1.0);
}

TEST(Snapshots, FullySharedNeverReplicates)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix C"),
                              SchedPolicy::RoundRobin,
                              SharingDegree::Shared16);
    cfg.warmupCycles = 15'000;
    cfg.measureCycles = 15'000;
    const RunResult r = runExperiment(cfg);
    // One partition: a block can have at most one copy.
    EXPECT_EQ(r.replication.replicatedLines, 0u);
}

} // namespace
} // namespace consim
