# Empty compiler generated dependencies file for consim.
# This may be replaced when dependencies are built.
