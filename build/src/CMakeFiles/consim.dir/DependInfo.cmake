
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_array.cc" "src/CMakeFiles/consim.dir/cache/cache_array.cc.o" "gcc" "src/CMakeFiles/consim.dir/cache/cache_array.cc.o.d"
  "/root/repo/src/coherence/directory.cc" "src/CMakeFiles/consim.dir/coherence/directory.cc.o" "gcc" "src/CMakeFiles/consim.dir/coherence/directory.cc.o.d"
  "/root/repo/src/coherence/l1_controller.cc" "src/CMakeFiles/consim.dir/coherence/l1_controller.cc.o" "gcc" "src/CMakeFiles/consim.dir/coherence/l1_controller.cc.o.d"
  "/root/repo/src/coherence/l2_bank.cc" "src/CMakeFiles/consim.dir/coherence/l2_bank.cc.o" "gcc" "src/CMakeFiles/consim.dir/coherence/l2_bank.cc.o.d"
  "/root/repo/src/coherence/memory_controller.cc" "src/CMakeFiles/consim.dir/coherence/memory_controller.cc.o" "gcc" "src/CMakeFiles/consim.dir/coherence/memory_controller.cc.o.d"
  "/root/repo/src/coherence/protocol.cc" "src/CMakeFiles/consim.dir/coherence/protocol.cc.o" "gcc" "src/CMakeFiles/consim.dir/coherence/protocol.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/consim.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/consim.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/consim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/consim.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/consim.dir/common/table.cc.o" "gcc" "src/CMakeFiles/consim.dir/common/table.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/consim.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/consim.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/mix.cc" "src/CMakeFiles/consim.dir/core/mix.cc.o" "gcc" "src/CMakeFiles/consim.dir/core/mix.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/consim.dir/core/report.cc.o" "gcc" "src/CMakeFiles/consim.dir/core/report.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/CMakeFiles/consim.dir/core/scheduler.cc.o" "gcc" "src/CMakeFiles/consim.dir/core/scheduler.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/consim.dir/core/system.cc.o" "gcc" "src/CMakeFiles/consim.dir/core/system.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/consim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/consim.dir/cpu/core.cc.o.d"
  "/root/repo/src/noc/mesh.cc" "src/CMakeFiles/consim.dir/noc/mesh.cc.o" "gcc" "src/CMakeFiles/consim.dir/noc/mesh.cc.o.d"
  "/root/repo/src/noc/network_interface.cc" "src/CMakeFiles/consim.dir/noc/network_interface.cc.o" "gcc" "src/CMakeFiles/consim.dir/noc/network_interface.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/CMakeFiles/consim.dir/noc/router.cc.o" "gcc" "src/CMakeFiles/consim.dir/noc/router.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/consim.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/consim.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/consim.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/consim.dir/workload/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
