file(REMOVE_RECURSE
  "libconsim.a"
)
