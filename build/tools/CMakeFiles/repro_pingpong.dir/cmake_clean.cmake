file(REMOVE_RECURSE
  "CMakeFiles/repro_pingpong.dir/repro_pingpong.cc.o"
  "CMakeFiles/repro_pingpong.dir/repro_pingpong.cc.o.d"
  "repro_pingpong"
  "repro_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
