# Empty dependencies file for repro_pingpong.
# This may be replaced when dependencies are built.
