# Empty compiler generated dependencies file for repro_hang.
# This may be replaced when dependencies are built.
