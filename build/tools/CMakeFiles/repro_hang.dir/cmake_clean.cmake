file(REMOVE_RECURSE
  "CMakeFiles/repro_hang.dir/repro_hang.cc.o"
  "CMakeFiles/repro_hang.dir/repro_hang.cc.o.d"
  "repro_hang"
  "repro_hang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_hang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
