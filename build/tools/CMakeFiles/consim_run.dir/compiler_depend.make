# Empty compiler generated dependencies file for consim_run.
# This may be replaced when dependencies are built.
