file(REMOVE_RECURSE
  "CMakeFiles/consim_run.dir/consim_run.cc.o"
  "CMakeFiles/consim_run.dir/consim_run.cc.o.d"
  "consim_run"
  "consim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
