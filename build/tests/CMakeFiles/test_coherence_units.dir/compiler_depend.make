# Empty compiler generated dependencies file for test_coherence_units.
# This may be replaced when dependencies are built.
