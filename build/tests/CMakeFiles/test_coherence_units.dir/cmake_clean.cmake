file(REMOVE_RECURSE
  "CMakeFiles/test_coherence_units.dir/test_coherence_units.cc.o"
  "CMakeFiles/test_coherence_units.dir/test_coherence_units.cc.o.d"
  "test_coherence_units"
  "test_coherence_units.pdb"
  "test_coherence_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
