file(REMOVE_RECURSE
  "CMakeFiles/test_noc_property.dir/test_noc_property.cc.o"
  "CMakeFiles/test_noc_property.dir/test_noc_property.cc.o.d"
  "test_noc_property"
  "test_noc_property.pdb"
  "test_noc_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
