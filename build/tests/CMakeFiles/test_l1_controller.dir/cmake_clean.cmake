file(REMOVE_RECURSE
  "CMakeFiles/test_l1_controller.dir/test_l1_controller.cc.o"
  "CMakeFiles/test_l1_controller.dir/test_l1_controller.cc.o.d"
  "test_l1_controller"
  "test_l1_controller.pdb"
  "test_l1_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l1_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
