# Empty dependencies file for test_protocol_msgs.
# This may be replaced when dependencies are built.
