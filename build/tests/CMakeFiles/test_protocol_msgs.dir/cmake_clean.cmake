file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_msgs.dir/test_protocol_msgs.cc.o"
  "CMakeFiles/test_protocol_msgs.dir/test_protocol_msgs.cc.o.d"
  "test_protocol_msgs"
  "test_protocol_msgs.pdb"
  "test_protocol_msgs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_msgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
