file(REMOVE_RECURSE
  "CMakeFiles/test_cache_property.dir/test_cache_property.cc.o"
  "CMakeFiles/test_cache_property.dir/test_cache_property.cc.o.d"
  "test_cache_property"
  "test_cache_property.pdb"
  "test_cache_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
