# Empty dependencies file for test_cache_property.
# This may be replaced when dependencies are built.
