file(REMOVE_RECURSE
  "CMakeFiles/test_l2_bank.dir/test_l2_bank.cc.o"
  "CMakeFiles/test_l2_bank.dir/test_l2_bank.cc.o.d"
  "test_l2_bank"
  "test_l2_bank.pdb"
  "test_l2_bank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l2_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
