# Empty dependencies file for test_l2_bank.
# This may be replaced when dependencies are built.
