# Empty compiler generated dependencies file for test_system_topology.
# This may be replaced when dependencies are built.
