file(REMOVE_RECURSE
  "CMakeFiles/test_system_topology.dir/test_system_topology.cc.o"
  "CMakeFiles/test_system_topology.dir/test_system_topology.cc.o.d"
  "test_system_topology"
  "test_system_topology.pdb"
  "test_system_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
