# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_stress[1]_include.cmake")
include("/root/repo/build/tests/test_coherence_units[1]_include.cmake")
include("/root/repo/build/tests/test_l1_controller[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_l2_bank[1]_include.cmake")
include("/root/repo/build/tests/test_cache_property[1]_include.cmake")
include("/root/repo/build/tests/test_noc_property[1]_include.cmake")
include("/root/repo/build/tests/test_system_topology[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_msgs[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
