file(REMOVE_RECURSE
  "CMakeFiles/mix_explorer.dir/mix_explorer.cpp.o"
  "CMakeFiles/mix_explorer.dir/mix_explorer.cpp.o.d"
  "mix_explorer"
  "mix_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
