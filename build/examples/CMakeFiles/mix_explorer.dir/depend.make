# Empty dependencies file for mix_explorer.
# This may be replaced when dependencies are built.
