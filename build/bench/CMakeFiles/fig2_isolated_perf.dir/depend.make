# Empty dependencies file for fig2_isolated_perf.
# This may be replaced when dependencies are built.
