file(REMOVE_RECURSE
  "CMakeFiles/fig2_isolated_perf.dir/fig2_isolated_perf.cc.o"
  "CMakeFiles/fig2_isolated_perf.dir/fig2_isolated_perf.cc.o.d"
  "fig2_isolated_perf"
  "fig2_isolated_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_isolated_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
