file(REMOVE_RECURSE
  "CMakeFiles/fig11_sharing_degree.dir/fig11_sharing_degree.cc.o"
  "CMakeFiles/fig11_sharing_degree.dir/fig11_sharing_degree.cc.o.d"
  "fig11_sharing_degree"
  "fig11_sharing_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sharing_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
