# Empty compiler generated dependencies file for fig11_sharing_degree.
# This may be replaced when dependencies are built.
