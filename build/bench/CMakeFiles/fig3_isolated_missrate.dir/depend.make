# Empty dependencies file for fig3_isolated_missrate.
# This may be replaced when dependencies are built.
