file(REMOVE_RECURSE
  "CMakeFiles/fig3_isolated_missrate.dir/fig3_isolated_missrate.cc.o"
  "CMakeFiles/fig3_isolated_missrate.dir/fig3_isolated_missrate.cc.o.d"
  "fig3_isolated_missrate"
  "fig3_isolated_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_isolated_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
