# Empty dependencies file for table2_workload_stats.
# This may be replaced when dependencies are built.
