file(REMOVE_RECURSE
  "CMakeFiles/fig5_homog_perf.dir/fig5_homog_perf.cc.o"
  "CMakeFiles/fig5_homog_perf.dir/fig5_homog_perf.cc.o.d"
  "fig5_homog_perf"
  "fig5_homog_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_homog_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
