# Empty dependencies file for fig4_isolated_misslat.
# This may be replaced when dependencies are built.
