file(REMOVE_RECURSE
  "CMakeFiles/fig4_isolated_misslat.dir/fig4_isolated_misslat.cc.o"
  "CMakeFiles/fig4_isolated_misslat.dir/fig4_isolated_misslat.cc.o.d"
  "fig4_isolated_misslat"
  "fig4_isolated_misslat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_isolated_misslat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
