# Empty dependencies file for fig13_utilization.
# This may be replaced when dependencies are built.
