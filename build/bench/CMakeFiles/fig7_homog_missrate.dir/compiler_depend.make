# Empty compiler generated dependencies file for fig7_homog_missrate.
# This may be replaced when dependencies are built.
