file(REMOVE_RECURSE
  "CMakeFiles/fig7_homog_missrate.dir/fig7_homog_missrate.cc.o"
  "CMakeFiles/fig7_homog_missrate.dir/fig7_homog_missrate.cc.o.d"
  "fig7_homog_missrate"
  "fig7_homog_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_homog_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
