# Empty compiler generated dependencies file for fig12_replication.
# This may be replaced when dependencies are built.
