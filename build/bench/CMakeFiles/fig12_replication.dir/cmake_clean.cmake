file(REMOVE_RECURSE
  "CMakeFiles/fig12_replication.dir/fig12_replication.cc.o"
  "CMakeFiles/fig12_replication.dir/fig12_replication.cc.o.d"
  "fig12_replication"
  "fig12_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
