file(REMOVE_RECURSE
  "CMakeFiles/fig10_hetero_misslat.dir/fig10_hetero_misslat.cc.o"
  "CMakeFiles/fig10_hetero_misslat.dir/fig10_hetero_misslat.cc.o.d"
  "fig10_hetero_misslat"
  "fig10_hetero_misslat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hetero_misslat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
