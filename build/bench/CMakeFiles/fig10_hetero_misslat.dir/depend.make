# Empty dependencies file for fig10_hetero_misslat.
# This may be replaced when dependencies are built.
