# Empty compiler generated dependencies file for fig8_hetero_perf.
# This may be replaced when dependencies are built.
