file(REMOVE_RECURSE
  "CMakeFiles/fig8_hetero_perf.dir/fig8_hetero_perf.cc.o"
  "CMakeFiles/fig8_hetero_perf.dir/fig8_hetero_perf.cc.o.d"
  "fig8_hetero_perf"
  "fig8_hetero_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hetero_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
