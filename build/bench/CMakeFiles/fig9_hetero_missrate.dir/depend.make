# Empty dependencies file for fig9_hetero_missrate.
# This may be replaced when dependencies are built.
