file(REMOVE_RECURSE
  "CMakeFiles/fig9_hetero_missrate.dir/fig9_hetero_missrate.cc.o"
  "CMakeFiles/fig9_hetero_missrate.dir/fig9_hetero_missrate.cc.o.d"
  "fig9_hetero_missrate"
  "fig9_hetero_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_hetero_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
