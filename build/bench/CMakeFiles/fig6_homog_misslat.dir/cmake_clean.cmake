file(REMOVE_RECURSE
  "CMakeFiles/fig6_homog_misslat.dir/fig6_homog_misslat.cc.o"
  "CMakeFiles/fig6_homog_misslat.dir/fig6_homog_misslat.cc.o.d"
  "fig6_homog_misslat"
  "fig6_homog_misslat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_homog_misslat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
