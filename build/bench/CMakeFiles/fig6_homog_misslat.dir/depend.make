# Empty dependencies file for fig6_homog_misslat.
# This may be replaced when dependencies are built.
