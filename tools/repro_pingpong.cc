
// Repro for the readers/one-writer ping-pong stress hang.
#include <cstdio>
#include <memory>
#include <vector>
#include "common/rng.hh"
#include "core/system.hh"
using namespace consim;

class RandomStream : public InstrStream {
  public:
    RandomStream(std::uint64_t seed, BlockAddr base, std::uint64_t range,
                 double wf, std::uint64_t total)
        : rng_(seed), base_(base), range_(range), wf_(wf), left_(total) {}
    WorkSlice next() override {
        WorkSlice s;
        if (left_ == 0) { s.computeCycles = 16; s.noMemRef = true; return s; }
        --left_;
        s.computeCycles = static_cast<std::uint32_t>(rng_.below(3));
        s.block = base_ + rng_.below(range_);
        s.isWrite = rng_.chance(wf_);
        return s;
    }
    bool done() const { return left_ == 0; }
  private:
    Rng rng_; BlockAddr base_; std::uint64_t range_; double wf_;
    std::uint64_t left_;
};

int main(int argc, char **argv)
{
    if (argc > 1) {
        std::fprintf(stderr,
                     "error: unknown option '%s'\n"
                     "usage: repro_pingpong (takes no arguments)\n",
                     argv[1]);
        return 2;
    }
    WorkloadProfile p;
    p.name = "stress";
    p.sharedRoBlocks = 3000; p.migratoryBlocks = 500;
    p.privateBlocksPerThread = 500;
    p.pSharedRo = 0.3; p.pMigratory = 0.1;
    p.hotSharedBlocks = 256; p.hotPrivateBlocks = 64;
    p.refsPerTransaction = 100;
    VirtualMachine vm(p, 0, 5);
    MachineConfig cfg;
    cfg.sharing = SharingDegree::Shared4;
    System sys(cfg, {&vm}, {});
    std::vector<std::unique_ptr<RandomStream>> streams;
    for (CoreId c = 0; c < 16; ++c) {
        const double wf = c == 0 ? 1.0 : 0.0;
        streams.push_back(std::make_unique<RandomStream>(
            7 + c, vmBaseBlock(0), 16, wf, 800));
        sys.core(c).bindThread(streams.back().get(), 0);
    }
    std::uint64_t last = 0; int stuck = 0;
    for (int iter = 0; iter < 100000; ++iter) {
        sys.run(64);
        bool settled = sys.quiesced();
        for (const auto &s : streams) settled = settled && s->done();
        if (settled) { std::printf("settled at %d iters\n", iter); return 0; }
        const auto instr = vm.vmStats().instructions.value();
        if (instr == last) { if (++stuck >= 200) break; } else stuck = 0;
        last = instr;
    }
    std::printf("STUCK; dumping\n");
    for (CoreId t = 0; t < 16; ++t) sys.bank(t).debugDump();
    for (CoreId t = 0; t < 16; ++t) sys.dir(t).debugDump();
    std::printf("net idle=%d quiesced=%d\n", sys.network().idle(),
                sys.quiesced());
    int undone = 0;
    for (const auto &s : streams) undone += s->done() ? 0 : 1;
    std::printf("streams not done: %d\n", undone);
    for (CoreId c = 0; c < 16; ++c)
        if (sys.core(c).blocked()) std::printf("core %d blocked\n", c);
    return 1;
}
