
// Probe: per-config LLC miss breakdown for one workload in isolation.
#include <cstdio>
#include "core/experiment.hh"
using namespace consim;
int main(int argc, char **argv)
{
    WorkloadKind kind = WorkloadKind::TpcW;
    if (argc > 1) {
        std::string k = argv[1];
        if (k == "jbb") kind = WorkloadKind::SpecJbb;
        if (k == "tpch") kind = WorkloadKind::TpcH;
        if (k == "web") kind = WorkloadKind::SpecWeb;
    }
    for (auto sharing : {SharingDegree::Private, SharingDegree::Shared4,
                         SharingDegree::Shared16}) {
        RunConfig cfg = isolationConfig(kind, SchedPolicy::Affinity, sharing);
        RunResult r = runExperiment(cfg);
        const auto &v = r.vms[0];
        std::printf("%-14s acc=%8llu miss=%8llu rate=%.3f c2c=%.2f "
                    "lat=%.1f cpt=%.0f txn=%llu\n",
                    toString(sharing).c_str(),
                    (unsigned long long)v.l2Accesses,
                    (unsigned long long)v.l2Misses, v.missRate,
                    v.c2cFraction, v.avgMissLatency,
                    v.cyclesPerTransaction,
                    (unsigned long long)v.transactions);
    }
    return 0;
}
