// Repro harness for long-run stalls: runs one configuration and
// reports per-VM progress in intervals, flagging cores that stay
// blocked across a whole interval.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/experiment.hh"

using namespace consim;

int
main(int argc, char **argv)
{
    const char *kind_s = argc > 1 ? argv[1] : "tpch";
    WorkloadKind kind = WorkloadKind::TpcH;
    if (std::string(kind_s) == "jbb")
        kind = WorkloadKind::SpecJbb;
    else if (std::string(kind_s) == "tpcw")
        kind = WorkloadKind::TpcW;
    else if (std::string(kind_s) == "web")
        kind = WorkloadKind::SpecWeb;

    SharingDegree sharing = SharingDegree::Shared16;
    if (argc > 2)
        sharing = static_cast<SharingDegree>(std::atoi(argv[2]));
    SchedPolicy policy = SchedPolicy::Affinity;
    if (argc > 3 && std::string(argv[3]) == "rr")
        policy = SchedPolicy::RoundRobin;

    RunConfig cfg = isolationConfig(kind, policy, sharing);

    std::vector<std::unique_ptr<VirtualMachine>> vms;
    std::vector<VirtualMachine *> ptrs;
    std::vector<int> tpv;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        const auto &prof = WorkloadProfile::get(cfg.workloads[i]);
        vms.push_back(std::make_unique<VirtualMachine>(
            prof, static_cast<VmId>(i), 1000003ull + i * 7919ull));
        ptrs.push_back(vms.back().get());
        tpv.push_back(prof.numThreads);
    }
    const auto placements = scheduleThreads(cfg.machine, tpv,
                                            cfg.policy, 1);
    System sys(cfg.machine, ptrs, placements);

    std::uint64_t last_instr = 0;
    for (int interval = 0; interval < 80; ++interval) {
        sys.run(100'000);
        std::uint64_t instr = 0;
        for (auto *vm : ptrs)
            instr += vm->vmStats().instructions.value();
        int blocked = 0;
        for (CoreId t = 0; t < 16; ++t)
            blocked += sys.core(t).blocked() ? 1 : 0;
        std::printf("t=%8llu instr=%12llu d=%10llu blocked=%d\n",
                    (unsigned long long)(interval + 1) * 100000ull,
                    (unsigned long long)instr,
                    (unsigned long long)(instr - last_instr), blocked);
        if (instr == last_instr) {
            std::printf("STALLED; dumping state\n");
            for (CoreId t = 0; t < 16; ++t)
                sys.bank(t).debugDump();
            for (CoreId t = 0; t < 16; ++t)
                sys.dir(t).debugDump();
            std::fprintf(stderr, "net idle=%d\n",
                         sys.network().idle());
            return 1;
        }
        last_instr = instr;
    }
    std::printf("completed without stall\n");
    return 0;
}
