/**
 * @file
 * repro_hang: stall reproducer driven by the in-simulator progress
 * watchdog. The original tool polled instruction counters from the
 * outside every 100k cycles and hand-dumped component state on a
 * stall; the watchdog does the same audit inside System::run with
 * per-core blocked tracking, and its SimError carries a structured
 * `consim.diag.v1` dump, which this tool pretty-prints.
 *
 * Usage:
 *   repro_hang [options]
 *     --vm jbb|tpcw|tpch|web   workload (default tpch)
 *     --sharing 1|2|4|8|16     sharing degree (default 16)
 *     --policy rr|affinity     placement policy (default affinity)
 *     --cycles N               total cycles to run (default 8e6)
 *     --watchdog N             check interval in cycles (default 1e5)
 *     --fault PLAN             inject faults to provoke a stall, e.g.
 *                              "wedge:core=3,at=250000"
 *     --expect-trip            invert the exit code: 0 when the
 *                              watchdog trips (CI fault smoke), 1
 *                              when the run completes cleanly
 *
 * Exit: 0 = ran to completion, 1 = stall detected (diag on stdout),
 * 2 = bad usage. With --expect-trip, 0 and 1 are swapped.
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hh"
#include "common/json.hh"
#include "common/parse.hh"
#include "core/experiment.hh"
#include "core/fault.hh"

using namespace consim;

namespace
{

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::cerr << "error: " << msg << "\n";
    std::cerr << "usage: repro_hang [--vm KIND] [--sharing N] "
                 "[--policy rr|affinity]\n"
                 "       [--cycles N] [--watchdog N] [--fault PLAN] "
                 "[--expect-trip]\n";
    std::exit(2);
}

std::uint64_t
parseCount(const std::string &opt, const std::string &s)
{
    std::uint64_t v = 0;
    if (!parseU64(s, v))
        usage((opt + " wants an unsigned integer, got '" + s + "'")
                  .c_str());
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    WorkloadKind kind = WorkloadKind::TpcH;
    SharingDegree sharing = SharingDegree::Shared16;
    SchedPolicy policy = SchedPolicy::Affinity;
    Cycle cycles = 8'000'000;
    Cycle watchdog = 100'000;
    FaultPlan faults;
    bool expect_trip = false;

    auto next_arg = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage("missing argument value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--vm") {
            const std::string v = next_arg(i);
            if (v == "jbb")
                kind = WorkloadKind::SpecJbb;
            else if (v == "tpcw")
                kind = WorkloadKind::TpcW;
            else if (v == "tpch")
                kind = WorkloadKind::TpcH;
            else if (v == "web")
                kind = WorkloadKind::SpecWeb;
            else
                usage("unknown workload kind (jbb|tpcw|tpch|web)");
        } else if (a == "--sharing") {
            int n = 0;
            if (!parseIntInRange(next_arg(i), 1, 16, n))
                usage("sharing degree must be 1|2|4|8|16");
            switch (n) {
              case 1:
                sharing = SharingDegree::Private;
                break;
              case 2:
                sharing = SharingDegree::Shared2;
                break;
              case 4:
                sharing = SharingDegree::Shared4;
                break;
              case 8:
                sharing = SharingDegree::Shared8;
                break;
              case 16:
                sharing = SharingDegree::Shared16;
                break;
              default:
                usage("sharing degree must be 1|2|4|8|16");
            }
        } else if (a == "--policy") {
            const std::string v = next_arg(i);
            if (v == "rr")
                policy = SchedPolicy::RoundRobin;
            else if (v == "affinity")
                policy = SchedPolicy::Affinity;
            else
                usage("unknown policy (rr|affinity)");
        } else if (a == "--cycles") {
            cycles = parseCount(a, next_arg(i));
            if (cycles == 0)
                usage("--cycles wants a positive count");
        } else if (a == "--watchdog") {
            watchdog = parseCount(a, next_arg(i));
            if (watchdog == 0)
                usage("--watchdog wants a positive interval");
        } else if (a == "--fault") {
            std::string err;
            if (!FaultPlan::parse(next_arg(i), faults, &err))
                usage(("bad --fault plan: " + err).c_str());
        } else if (a == "--expect-trip") {
            expect_trip = true;
        } else if (a == "--help" || a == "-h") {
            usage();
        } else {
            usage(("unknown option '" + a + "'").c_str());
        }
    }

    RunConfig cfg = isolationConfig(kind, policy, sharing);

    std::vector<std::unique_ptr<VirtualMachine>> vms;
    std::vector<VirtualMachine *> ptrs;
    std::vector<int> tpv;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        const auto &prof = WorkloadProfile::get(cfg.workloads[i]);
        vms.push_back(std::make_unique<VirtualMachine>(
            prof, static_cast<VmId>(i), 1000003ull + i * 7919ull));
        ptrs.push_back(vms.back().get());
        tpv.push_back(prof.numThreads);
    }
    // A diagnosis tool wants recoverable errors: raise the ambient
    // check level to basic so invariant violations surface as
    // SimError (an explicit CONSIM_CHECK=full still wins).
    if (check::level() == check::Level::Off)
        check::setLevel(check::Level::Basic);

    const auto placements =
        scheduleThreads(cfg.machine, tpv, cfg.policy, 1);
    System sys(cfg.machine, ptrs, placements);
    sys.setWatchdogInterval(watchdog);
    if (!faults.empty())
        sys.setFaultPlan(faults);

    try {
        sys.run(cycles);
    } catch (const SimError &e) {
        std::cout << "stall detected (" << toString(e.kind())
                  << "): " << e.what() << "\n";
        json::Value d;
        if (!e.diag().empty() && json::parse(e.diag(), d)) {
            d.write(std::cout, 2);
            std::cout << "\n";
        } else if (!e.diag().empty()) {
            std::cout << e.diag() << "\n";
        }
        return expect_trip ? 0 : 1;
    }

    std::uint64_t instr = 0;
    for (auto *vm : ptrs)
        instr += vm->vmStats().instructions.value();
    std::cout << "completed " << cycles << " cycles without stall ("
              << instr << " instructions)\n";
    if (expect_trip) {
        std::cerr << "error: expected the watchdog to trip\n";
        return 1;
    }
    return 0;
}
