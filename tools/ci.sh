#!/usr/bin/env bash
# CI gate: tier-1 verify (full build + test suite), an ASan+UBSan
# pass over the whole tier-1 suite (memory safety of the registry,
# JSON layer, and simulator core), plus a ThreadSanitizer pass over
# the sweep engine's concurrency surface (thread pool + parallel
# sweep determinism + event queue).
#
# Usage: tools/ci.sh [--skip-tsan] [--skip-asan]
set -euo pipefail

cd "$(dirname "$0")/.."

skip_tsan=0
skip_asan=0
for arg in "$@"; do
    case "$arg" in
        --skip-tsan) skip_tsan=1 ;;
        --skip-asan) skip_asan=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "=== tier-1: build + full test suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "$skip_asan" == 1 ]]; then
    echo "=== asan+ubsan: skipped ==="
else
    echo "=== asan+ubsan: full tier-1 test suite ==="
    cmake -B build-asan -S . -DCONSIM_SAN=address,undefined >/dev/null
    cmake --build build-asan -j "$(nproc)"
    (cd build-asan && ctest --output-on-failure -j "$(nproc)")
fi

if [[ "$skip_tsan" == 1 ]]; then
    echo "=== tsan: skipped ==="
    exit 0
fi

echo "=== tsan: thread pool + parallel sweep determinism ==="
cmake -B build-tsan -S . -DCONSIM_SAN=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" \
    --target test_determinism test_event_queue
(cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
    -R 'Determinism|CalendarQueue')

echo "=== ci.sh: all green ==="
