#!/usr/bin/env bash
# CI gate: tier-1 verify (full build + test suite), a checked-mode
# pass (full suite with every runtime invariant checker enabled) plus
# a fault-injection smoke over the whole catalog, an ASan+UBSan pass
# over the whole tier-1 suite (memory safety of the registry, JSON
# layer, and simulator core), plus a ThreadSanitizer pass over the
# sweep engine's concurrency surface (thread pool + parallel sweep
# determinism + event queue).
#
# Usage: tools/ci.sh [--skip-tsan] [--skip-asan] [--skip-checked]
set -euo pipefail

cd "$(dirname "$0")/.."

skip_tsan=0
skip_asan=0
skip_checked=0
for arg in "$@"; do
    case "$arg" in
        --skip-tsan) skip_tsan=1 ;;
        --skip-asan) skip_asan=1 ;;
        --skip-checked) skip_checked=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "=== tier-1: build + full test suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "=== resume equivalence: interrupted+resumed == uninterrupted ==="
# 2M simulated cycles, snapshot at 1M, deadline-trip at 1.1M, resume
# from the snapshot: the result block of the resumed run must be
# byte-identical to the uninterrupted run. (The config echo alone may
# differ — the tripped run carries the deadline knob — so compare from
# the result object onward.)
ckpt_dir="$(mktemp -d)"
trap 'rm -rf "$ckpt_dir"' EXIT
./build/tools/consim_run --vm tpcw --vm jbb \
    --warmup 1000000 --measure 1000000 --watchdog 200000 \
    --json "$ckpt_dir/full.json" >/dev/null
if ./build/tools/consim_run --vm tpcw --vm jbb \
    --warmup 1000000 --measure 1000000 --watchdog 200000 \
    --deadline 1100000 --ckpt-every 1000000 \
    --ckpt-out "$ckpt_dir/trip.ckpt" >/dev/null 2>&1; then
    echo "resume equivalence: deadline run unexpectedly succeeded" >&2
    exit 1
fi
[[ -s "$ckpt_dir/trip.ckpt" ]] || {
    echo "resume equivalence: no checkpoint written" >&2; exit 1; }
./build/tools/consim_run --resume "$ckpt_dir/trip.ckpt" \
    --json "$ckpt_dir/resumed.json" >/dev/null
awk '/"result": \{/,0' "$ckpt_dir/full.json" >"$ckpt_dir/full.result"
awk '/"result": \{/,0' "$ckpt_dir/resumed.json" >"$ckpt_dir/resumed.result"
diff -u "$ckpt_dir/full.result" "$ckpt_dir/resumed.result" || {
    echo "resume equivalence: resumed result diverged" >&2; exit 1; }
echo "resume equivalence: result blocks byte-identical"

if [[ "$skip_checked" == 1 ]]; then
    echo "=== checked mode: skipped ==="
else
    echo "=== checked mode: full test suite under CONSIM_CHECK=full ==="
    # Death tests assert the off-level abort behaviour that checked
    # mode deliberately replaces with recoverable SimErrors.
    (cd build && CONSIM_CHECK=full ctest --output-on-failure \
        -j "$(nproc)" -E 'DeathTest')

    echo "=== fault-injection smoke: every catalog fault must be caught ==="
    ./build/tools/repro_hang --cycles 400000 --watchdog 50000 \
        --fault "wedge:core=3,at=100000" --expect-trip >/dev/null
    ./build/tools/repro_hang --cycles 600000 --watchdog 50000 \
        --fault "drop:nth=500" --expect-trip >/dev/null
    ./build/tools/repro_hang --cycles 400000 --watchdog 50000 \
        --fault "memburst:at=100000,len=200000,extra=400000" \
        --expect-trip >/dev/null
    echo "fault-injection smoke: all faults caught"
fi

if [[ "$skip_asan" == 1 ]]; then
    echo "=== asan+ubsan: skipped ==="
else
    echo "=== asan+ubsan: full tier-1 test suite ==="
    cmake -B build-asan -S . -DCONSIM_SAN=address,undefined >/dev/null
    cmake --build build-asan -j "$(nproc)"
    (cd build-asan && ctest --output-on-failure -j "$(nproc)")
fi

if [[ "$skip_tsan" == 1 ]]; then
    echo "=== tsan: skipped ==="
    exit 0
fi

echo "=== tsan: thread pool + parallel sweep determinism ==="
cmake -B build-tsan -S . -DCONSIM_SAN=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" \
    --target test_determinism test_event_queue
(cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
    -R 'Determinism|CalendarQueue')

echo "=== ci.sh: all green ==="
