#!/usr/bin/env bash
# CI gate: tier-1 verify (full build + test suite) plus a
# ThreadSanitizer pass over the sweep engine's concurrency surface
# (thread pool + parallel sweep determinism + event queue).
#
# Usage: tools/ci.sh [--skip-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

skip_tsan=0
if [[ "${1:-}" == "--skip-tsan" ]]; then
    skip_tsan=1
fi

echo "=== tier-1: build + full test suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "$skip_tsan" == 1 ]]; then
    echo "=== tsan: skipped ==="
    exit 0
fi

echo "=== tsan: thread pool + parallel sweep determinism ==="
cmake -B build-tsan -S . -DCONSIM_SAN=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" \
    --target test_determinism test_event_queue
(cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
    -R 'Determinism|CalendarQueue')

echo "=== ci.sh: all green ==="
