#!/usr/bin/env bash
# CI gate: tier-1 verify (full build + test suite), a parallel-run
# determinism check (--run-jobs 4 must match serial byte-for-byte), a
# scale-out smoke (32-core/8-VM parallel determinism and
# checkpoint-resume byte-identity), a scale-to-256 smoke (128-core
# over-committed parallel determinism + resume byte-identity), a
# zero-allocation assertion over the measure window, an isolation
# smoke (QoS must protect the VM) and a dyn-sched smoke (migration
# must beat the static placement on the bursty mix, and resume across
# migration epochs must be byte-identical), a checked-mode
# pass (full suite with every runtime invariant checker
# enabled) plus a fault-injection smoke over the whole catalog, a
# perf-regression smoke against the committed BENCH_*.json, an
# ASan+UBSan pass over the whole tier-1 suite (memory safety of the
# registry, JSON layer, and simulator core), plus a ThreadSanitizer
# pass over the concurrency surface (thread pool + parallel sweep +
# tile-parallel event core + event queue).
#
# Usage: tools/ci.sh [--skip-tsan] [--skip-asan] [--skip-checked]
#                    [--skip-perf]
set -euo pipefail

cd "$(dirname "$0")/.."

skip_tsan=0
skip_asan=0
skip_checked=0
skip_perf=0
for arg in "$@"; do
    case "$arg" in
        --skip-tsan) skip_tsan=1 ;;
        --skip-asan) skip_asan=1 ;;
        --skip-checked) skip_checked=1 ;;
        --skip-perf) skip_perf=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "=== tier-1: build + full test suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "=== parallel-run determinism: --run-jobs 4 == serial ==="
# The tile-parallel event core must reproduce the serial engine
# byte-for-byte, envelope included (runJobs never enters the config
# echo, so the documents are directly comparable).
par_dir="$(mktemp -d)"
trap 'rm -rf "$par_dir"' EXIT
./build/tools/consim_run --mix "Mix 5" \
    --warmup 300000 --measure 300000 \
    --json "$par_dir/serial.json" >/dev/null
./build/tools/consim_run --mix "Mix 5" \
    --warmup 300000 --measure 300000 --run-jobs 4 \
    --json "$par_dir/par.json" >/dev/null
diff -u "$par_dir/serial.json" "$par_dir/par.json" || {
    echo "parallel-run determinism: --run-jobs 4 diverged" >&2; exit 1; }
echo "parallel-run determinism: envelopes byte-identical"

echo "=== resume equivalence: interrupted+resumed == uninterrupted ==="
# 2M simulated cycles, snapshot at 1M, deadline-trip at 1.1M, resume
# from the snapshot: the result block of the resumed run must be
# byte-identical to the uninterrupted run. (The config echo alone may
# differ — the tripped run carries the deadline knob — so compare from
# the result object onward.)
ckpt_dir="$(mktemp -d)"
trap 'rm -rf "$ckpt_dir" "$par_dir"' EXIT
./build/tools/consim_run --vm tpcw --vm jbb \
    --warmup 1000000 --measure 1000000 --watchdog 200000 \
    --json "$ckpt_dir/full.json" >/dev/null
if ./build/tools/consim_run --vm tpcw --vm jbb \
    --warmup 1000000 --measure 1000000 --watchdog 200000 \
    --deadline 1100000 --ckpt-every 1000000 \
    --ckpt-out "$ckpt_dir/trip.ckpt" >/dev/null 2>&1; then
    echo "resume equivalence: deadline run unexpectedly succeeded" >&2
    exit 1
fi
[[ -s "$ckpt_dir/trip.ckpt" ]] || {
    echo "resume equivalence: no checkpoint written" >&2; exit 1; }
./build/tools/consim_run --resume "$ckpt_dir/trip.ckpt" \
    --json "$ckpt_dir/resumed.json" >/dev/null
awk '/"result": \{/,0' "$ckpt_dir/full.json" >"$ckpt_dir/full.result"
awk '/"result": \{/,0' "$ckpt_dir/resumed.json" >"$ckpt_dir/resumed.result"
diff -u "$ckpt_dir/full.result" "$ckpt_dir/resumed.result" || {
    echo "resume equivalence: resumed result diverged" >&2; exit 1; }
echo "resume equivalence: result blocks byte-identical"

# Same contract with the tile-parallel engine on both sides: the
# interrupted run snapshots from parallel windows (boundaries only),
# and the resume itself runs parallel.
if ./build/tools/consim_run --vm tpcw --vm jbb --run-jobs 4 \
    --warmup 1000000 --measure 1000000 --watchdog 200000 \
    --deadline 1100000 --ckpt-every 1000000 \
    --ckpt-out "$ckpt_dir/trip-par.ckpt" >/dev/null 2>&1; then
    echo "resume equivalence (parallel): deadline run unexpectedly succeeded" >&2
    exit 1
fi
[[ -s "$ckpt_dir/trip-par.ckpt" ]] || {
    echo "resume equivalence (parallel): no checkpoint written" >&2; exit 1; }
diff -u "$ckpt_dir/trip.ckpt" "$ckpt_dir/trip-par.ckpt" || {
    echo "resume equivalence (parallel): snapshot diverged from serial" >&2
    exit 1; }
./build/tools/consim_run --resume "$ckpt_dir/trip-par.ckpt" --run-jobs 4 \
    --json "$ckpt_dir/resumed-par.json" >/dev/null
awk '/"result": \{/,0' "$ckpt_dir/resumed-par.json" \
    >"$ckpt_dir/resumed-par.result"
diff -u "$ckpt_dir/full.result" "$ckpt_dir/resumed-par.result" || {
    echo "resume equivalence (parallel): resumed result diverged" >&2
    exit 1; }
echo "resume equivalence (parallel): snapshots and results byte-identical"

echo "=== scale-out smoke: 32-core chip, 8 VMs ==="
# The parametric scale model must uphold the same two contracts beyond
# the paper's 16-core chip: the tile-parallel engine reproduces serial
# byte-for-byte, and an interrupted+resumed run matches uninterrupted.
scale_dir="$(mktemp -d)"
trap 'rm -rf "$ckpt_dir" "$par_dir" "$scale_dir"' EXIT
scale_args=(--mesh 8x4 --sharing 8
    --vm jbb --vm tpcw --vm tpch --vm web
    --vm jbb --vm tpcw --vm tpch --vm web
    --warmup 600000 --measure 600000 --watchdog 200000)
./build/tools/consim_run "${scale_args[@]}" \
    --json "$scale_dir/serial.json" >/dev/null
./build/tools/consim_run "${scale_args[@]}" --run-jobs 4 \
    --json "$scale_dir/par.json" >/dev/null
diff -u "$scale_dir/serial.json" "$scale_dir/par.json" || {
    echo "scale-out smoke: --run-jobs 4 diverged at 32 cores" >&2
    exit 1; }
if ./build/tools/consim_run "${scale_args[@]}" \
    --deadline 700000 --ckpt-every 600000 \
    --ckpt-out "$scale_dir/trip.ckpt" >/dev/null 2>&1; then
    echo "scale-out smoke: deadline run unexpectedly succeeded" >&2
    exit 1
fi
[[ -s "$scale_dir/trip.ckpt" ]] || {
    echo "scale-out smoke: no checkpoint written" >&2; exit 1; }
./build/tools/consim_run --resume "$scale_dir/trip.ckpt" \
    --json "$scale_dir/resumed.json" >/dev/null
awk '/"result": \{/,0' "$scale_dir/serial.json" >"$scale_dir/serial.result"
awk '/"result": \{/,0' "$scale_dir/resumed.json" >"$scale_dir/resumed.result"
diff -u "$scale_dir/serial.result" "$scale_dir/resumed.result" || {
    echo "scale-out smoke: resumed result diverged at 32 cores" >&2
    exit 1; }
echo "scale-out smoke: 32-core parallel + resume byte-identical"

echo "=== scale-to-256 smoke: 128-core chip, over-committed ==="
# The same two contracts at the consolidation-study scale: a 16x8 mesh
# running Mix 1 with 1.5x over-committed schedules (192 threads on 128
# cores, so the time-sliced context rotation is live). Short windows —
# this is a correctness smoke, not a perf point (bench/fig16_scale256
# owns the throughput numbers).
big_dir="$(mktemp -d)"
trap 'rm -rf "$ckpt_dir" "$par_dir" "$scale_dir" "$big_dir"' EXIT
big_args=(--mesh 16x8 --sharing 8
    --vm jbb --vm tpcw --vm tpch --vm web
    --vm-threads 48,48,48,48
    --warmup 10000 --measure 10000 --watchdog 20000)
./build/tools/consim_run "${big_args[@]}" \
    --json "$big_dir/serial.json" >/dev/null
./build/tools/consim_run "${big_args[@]}" --run-jobs 4 \
    --json "$big_dir/par.json" >/dev/null
diff -u "$big_dir/serial.json" "$big_dir/par.json" || {
    echo "scale-to-256 smoke: --run-jobs 4 diverged at 128 cores" >&2
    exit 1; }
if ./build/tools/consim_run "${big_args[@]}" \
    --deadline 12000 --ckpt-every 10000 \
    --ckpt-out "$big_dir/trip.ckpt" >/dev/null 2>&1; then
    echo "scale-to-256 smoke: deadline run unexpectedly succeeded" >&2
    exit 1
fi
[[ -s "$big_dir/trip.ckpt" ]] || {
    echo "scale-to-256 smoke: no checkpoint written" >&2; exit 1; }
./build/tools/consim_run --resume "$big_dir/trip.ckpt" \
    --json "$big_dir/resumed.json" >/dev/null
awk '/"result": \{/,0' "$big_dir/serial.json" >"$big_dir/serial.result"
awk '/"result": \{/,0' "$big_dir/resumed.json" >"$big_dir/resumed.result"
diff -u "$big_dir/serial.result" "$big_dir/resumed.result" || {
    echo "scale-to-256 smoke: resumed result diverged at 128 cores" >&2
    exit 1; }
echo "scale-to-256 smoke: 128-core parallel + resume byte-identical"

echo "=== zero-allocation: measure window allocates nothing ==="
# The pooled/arena hot paths must keep the steady state off the heap:
# the global operator-new hook counts every allocation inside the
# measure window across paper-machine, 64-core, and over-committed
# configurations, and the count must be exactly zero.
./build/tests/test_alloc_steady_state
echo "zero-allocation: measure window clean"

echo "=== isolation smoke: protected VM vs bullies, QoS bound ==="
# A protected SPECjbb VM against three 4-thread bully antagonists on a
# bandwidth-constrained 2 MB-LLC node (the fig15 scenario, shrunk).
# QoS (way partition + reserved VC + MC token buckets) must cut the
# protected VM's cycles/transaction by a real margin, and the throttle
# stalls must land on the bullies (mc_throttle_stalls present only in
# the QoS envelope, and only on bully VMs).
iso_dir="$(mktemp -d)"
trap 'rm -rf "$ckpt_dir" "$par_dir" "$scale_dir" "$iso_dir"' EXIT
# Fully-shared LLC: with the default 4-core groups the bullies never
# touch the protected VM's bank and the way restriction is pure loss.
iso_args=(--vm jbb --vm bully --vm bully --vm bully
    --vm-threads 0,4,4,4 --sharing 16 --l2 2097152 --mem-issue 96
    --warmup 300000 --measure 600000 --watchdog 200000)
iso_qos="static:vm=0,ways=2,vcs=1,tokens=1,refill=2048"
./build/tools/consim_run "${iso_args[@]}" \
    --json "$iso_dir/noqos.json" >/dev/null
./build/tools/consim_run "${iso_args[@]}" --qos "$iso_qos" \
    --json "$iso_dir/qos.json" >/dev/null
cpt() {
    grep -o '"cycles_per_transaction": *[0-9.e+]*' "$1" |
        head -n1 | sed 's/.*: *//'
}
noqos_cpt="$(cpt "$iso_dir/noqos.json")"
qos_cpt="$(cpt "$iso_dir/qos.json")"
[[ -n "$noqos_cpt" && -n "$qos_cpt" ]] || {
    echo "isolation smoke: cannot extract cycles_per_transaction" >&2
    exit 1; }
awk -v noqos="$noqos_cpt" -v qos="$qos_cpt" 'BEGIN {
    bound = noqos * 0.95;
    printf "isolation smoke: protected cy/txn %s (QoS) vs %s (no QoS," \
           " bound %.0f)\n", qos, noqos, bound;
    exit (qos + 0 < bound) ? 0 : 1;
}' || {
    echo "isolation smoke: QoS failed to protect the VM" >&2; exit 1; }
grep -q '"mc_throttle_stalls"' "$iso_dir/qos.json" || {
    echo "isolation smoke: no throttle stalls reported under QoS" >&2
    exit 1; }
if grep -q '"mc_throttle_stalls"' "$iso_dir/noqos.json"; then
    echo "isolation smoke: throttle stalls leaked into no-QoS envelope" >&2
    exit 1
fi
echo "isolation smoke: QoS bound holds, stalls land on the bullies"

echo "=== dyn-sched smoke: migration beats static on the bursty mix ==="
# The fig17 bursty scenario, single point: three 4-thread Bursty VMs
# on a sharing-2 chip with a 2 MB LLC. Contention-aware migration must
# commit more transactions than the static affinity placement over the
# same window (same measured cycles, so more transactions == lower
# aggregate cy/txn), must actually migrate, and a run interrupted and
# resumed across migration epochs must match the uninterrupted run
# byte-for-byte.
dyn_dir="$(mktemp -d)"
trap 'rm -rf "$ckpt_dir" "$par_dir" "$scale_dir" "$iso_dir" "$dyn_dir"' EXIT
dyn_args=(--vm bursty --vm bursty --vm bursty --vm-threads 4,4,4
    --sharing 2 --l2 2097152
    --warmup 200000 --measure 1200000 --watchdog 200000)
dyn_spec="contention-aware,epoch=25000"
./build/tools/consim_run "${dyn_args[@]}" \
    --json "$dyn_dir/static.json" >/dev/null
./build/tools/consim_run "${dyn_args[@]}" --dyn-sched "$dyn_spec" \
    --json "$dyn_dir/dyn.json" >/dev/null
txns() {
    grep -o '"transactions": *[0-9]*' "$1" |
        sed 's/.*: *//' | awk '{ s += $1 } END { print s }'
}
static_txns="$(txns "$dyn_dir/static.json")"
dyn_txns="$(txns "$dyn_dir/dyn.json")"
[[ -n "$static_txns" && -n "$dyn_txns" ]] || {
    echo "dyn-sched smoke: cannot extract transactions" >&2; exit 1; }
# Fixed 1% margin: the run is deterministic (seed 1 commits 930 vs
# 913 transactions, +1.9%), so host noise cannot erode the gate.
awk -v dyn="$dyn_txns" -v st="$static_txns" 'BEGIN {
    bound = st * 1.01;
    printf "dyn-sched smoke: %s txns (dynamic) vs %s (static," \
           " bound %.0f)\n", dyn, st, bound;
    exit (dyn + 0 > bound) ? 0 : 1;
}' || {
    echo "dyn-sched smoke: migration failed to beat static placement" >&2
    exit 1; }
grep -q '"dyn_migrations"' "$dyn_dir/dyn.json" || {
    echo "dyn-sched smoke: no migrations reported" >&2; exit 1; }
if grep -q '"dyn_migrations"' "$dyn_dir/static.json"; then
    echo "dyn-sched smoke: migrations leaked into the static envelope" >&2
    exit 1
fi
if ./build/tools/consim_run "${dyn_args[@]}" --dyn-sched "$dyn_spec" \
    --deadline 700000 --ckpt-every 600000 \
    --ckpt-out "$dyn_dir/trip.ckpt" >/dev/null 2>&1; then
    echo "dyn-sched smoke: deadline run unexpectedly succeeded" >&2
    exit 1
fi
[[ -s "$dyn_dir/trip.ckpt" ]] || {
    echo "dyn-sched smoke: no checkpoint written" >&2; exit 1; }
./build/tools/consim_run --resume "$dyn_dir/trip.ckpt" \
    --json "$dyn_dir/resumed.json" >/dev/null
awk '/"result": \{/,0' "$dyn_dir/dyn.json" >"$dyn_dir/dyn.result"
awk '/"result": \{/,0' "$dyn_dir/resumed.json" >"$dyn_dir/resumed.result"
diff -u "$dyn_dir/dyn.result" "$dyn_dir/resumed.result" || {
    echo "dyn-sched smoke: resumed migrating run diverged" >&2; exit 1; }
echo "dyn-sched smoke: dynamic wins, resume across migrations clean"

if [[ "$skip_checked" == 1 ]]; then
    echo "=== checked mode: skipped ==="
else
    echo "=== checked mode: full test suite under CONSIM_CHECK=full ==="
    # Death tests assert the off-level abort behaviour that checked
    # mode deliberately replaces with recoverable SimErrors.
    (cd build && CONSIM_CHECK=full ctest --output-on-failure \
        -j "$(nproc)" -E 'DeathTest')

    echo "=== fault-injection smoke: every catalog fault must be caught ==="
    ./build/tools/repro_hang --cycles 400000 --watchdog 50000 \
        --fault "wedge:core=3,at=100000" --expect-trip >/dev/null
    ./build/tools/repro_hang --cycles 600000 --watchdog 50000 \
        --fault "drop:nth=500" --expect-trip >/dev/null
    ./build/tools/repro_hang --cycles 400000 --watchdog 50000 \
        --fault "memburst:at=100000,len=200000,extra=400000" \
        --expect-trip >/dev/null
    echo "fault-injection smoke: all faults caught"
fi

if [[ "$skip_perf" == 1 ]]; then
    echo "=== perf smoke: skipped ==="
else
    echo "=== perf smoke: throughput vs committed baseline ==="
    # Single-sim throughput must stay within 15% of the most recent
    # committed BENCH_*.json. perf_smoke reports the median of three
    # timed repetitions (the sim is deterministic, so the repeats
    # differ only by host noise) and stamps the envelope with host
    # metadata (host_cpus, cpu_model, loadavg_1m) so a tripped gate
    # can be triaged against the machine it ran on. The floor is
    # still deliberately loose — it catches order-of-magnitude
    # regressions in the event core, not percent drift.
    baseline="$(ls BENCH_*.json 2>/dev/null | sort -V | tail -n1 || true)"
    if [[ -z "$baseline" ]]; then
        echo "perf smoke: no committed BENCH_*.json baseline; skipping"
    else
        ./build/bench/perf_smoke > "$ckpt_dir/perf.json"
        base_cps="$(grep -o '"cycles_per_sec":[0-9]*' "$baseline" |
            head -n1 | cut -d: -f2)"
        new_cps="$(grep -o '"cycles_per_sec":[0-9]*' "$ckpt_dir/perf.json" |
            head -n1 | cut -d: -f2)"
        [[ -n "$base_cps" && -n "$new_cps" ]] || {
            echo "perf smoke: cannot extract cycles_per_sec" >&2; exit 1; }
        awk -v base="$base_cps" -v cur="$new_cps" 'BEGIN {
            floor = base * 0.85;
            printf "perf smoke: %s cycles/s vs baseline %s (floor %.0f)\n",
                cur, base, floor;
            exit (cur + 0 < floor) ? 1 : 0;
        }' || {
            echo "perf smoke: throughput dropped >15% vs $baseline" >&2
            exit 1; }
    fi
fi

if [[ "$skip_asan" == 1 ]]; then
    echo "=== asan+ubsan: skipped ==="
else
    echo "=== asan+ubsan: full tier-1 test suite ==="
    cmake -B build-asan -S . -DCONSIM_SAN=address,undefined >/dev/null
    cmake --build build-asan -j "$(nproc)"
    (cd build-asan && ctest --output-on-failure -j "$(nproc)")
fi

if [[ "$skip_tsan" == 1 ]]; then
    echo "=== tsan: skipped ==="
    exit 0
fi

echo "=== tsan: thread pool + parallel sweep + tile-parallel core ==="
cmake -B build-tsan -S . -DCONSIM_SAN=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" \
    --target test_determinism test_event_queue test_parallel_run \
    consim_run
(cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
    -R 'Determinism|CalendarQueue|ParallelRun')

# The QoS hot paths (way-mask victim scans, VC reservation, MC token
# buckets, the epoch repartitioner) must be race-free under the
# tile-parallel engine: one isolation run with workers on.
./build-tsan/tools/consim_run "${iso_args[@]}" --qos "$iso_qos" \
    --run-jobs 4 >/dev/null
echo "tsan: isolation run clean under --run-jobs 4"

# Likewise the migration paths (epoch sampling, deferred rebinds at
# the window boundary, the feedback loop): one migrating bursty run
# with workers on.
./build-tsan/tools/consim_run "${dyn_args[@]}" --dyn-sched "$dyn_spec" \
    --run-jobs 4 >/dev/null
echo "tsan: migrating run clean under --run-jobs 4"

echo "=== ci.sh: all green ==="
