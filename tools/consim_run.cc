/**
 * @file
 * consim_run: general-purpose command-line front end to the
 * simulator. Runs any workload list under any policy / sharing
 * degree / machine tweak and reports per-VM metrics, optionally as
 * CSV (for plotting) or with a full component statistics dump.
 *
 * Usage:
 *   consim_run [options]
 *     --mix "Mix 5"            Table IV mix (exclusive with --vm)
 *     --vm tpcw --vm tpch ...  explicit VM list (jbb|tpcw|tpch|web)
 *     --policy rr|affinity|aff-rr|random       (default affinity)
 *     --sharing 1|2|4|8|16                     (default 4)
 *     --warmup N --measure N   cycles          (default library)
 *     --seed N                                 (default 1)
 *     --seeds N                average N seeds (seed..seed+N-1), run
 *                              in parallel on CONSIM_JOBS threads
 *     --migrate N              swap threads every N cycles
 *     --no-dir-cache           ablation: no directory caches
 *     --no-clean-fwd           ablation: memory supplies clean data
 *     --ideal-noc              ablation: fixed-latency interconnect
 *     --csv                    machine-readable per-VM output
 *     --dump-stats             full component statistics dump
 *     --json PATH              write the consim.run.v1 JSON envelope
 *                              (also via the CONSIM_JSON env var)
 *
 * Examples:
 *   consim_run --mix "Mix 7" --policy rr
 *   consim_run --vm jbb --vm jbb --sharing 8 --csv
 *   consim_run --mix "Mix 5" --json mix5.json
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/mix.hh"
#include "core/report.hh"
#include "exec/sweep.hh"

namespace
{

using namespace consim;

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::cerr << "error: " << msg << "\n";
    std::cerr <<
        "usage: consim_run [--mix NAME | --vm KIND...] "
        "[--policy P] [--sharing N]\n"
        "       [--warmup N] [--measure N] [--seed N] [--seeds N] "
        "[--migrate N]\n"
        "       [--no-dir-cache] [--no-clean-fwd] [--ideal-noc] "
        "[--csv] [--dump-stats]\n"
        "       [--json PATH]\n";
    std::exit(2);
}

void
writeJsonDoc(const std::string &path, const json::Value &doc)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot open JSON output path " << path
                  << "\n";
        std::exit(1);
    }
    doc.write(out, 2);
    out << "\n";
}

WorkloadKind
parseKind(const std::string &s)
{
    if (s == "jbb")
        return WorkloadKind::SpecJbb;
    if (s == "tpcw")
        return WorkloadKind::TpcW;
    if (s == "tpch")
        return WorkloadKind::TpcH;
    if (s == "web")
        return WorkloadKind::SpecWeb;
    usage("unknown workload kind (jbb|tpcw|tpch|web)");
}

SchedPolicy
parsePolicy(const std::string &s)
{
    if (s == "rr")
        return SchedPolicy::RoundRobin;
    if (s == "affinity")
        return SchedPolicy::Affinity;
    if (s == "aff-rr")
        return SchedPolicy::AffinityRR;
    if (s == "random")
        return SchedPolicy::Random;
    usage("unknown policy (rr|affinity|aff-rr|random)");
}

SharingDegree
parseSharing(const std::string &s)
{
    switch (std::atoi(s.c_str())) {
      case 1:
        return SharingDegree::Private;
      case 2:
        return SharingDegree::Shared2;
      case 4:
        return SharingDegree::Shared4;
      case 8:
        return SharingDegree::Shared8;
      case 16:
        return SharingDegree::Shared16;
      default:
        usage("sharing degree must be 1|2|4|8|16");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    RunConfig cfg;
    bool csv = false;
    bool dump = false;
    int num_seeds = 1;
    std::string mix_name;
    std::string json_path;
    if (const char *env = std::getenv("CONSIM_JSON"))
        json_path = env;

    auto next_arg = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage("missing argument value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--mix") {
            mix_name = next_arg(i);
        } else if (a == "--vm") {
            cfg.workloads.push_back(parseKind(next_arg(i)));
        } else if (a == "--policy") {
            cfg.policy = parsePolicy(next_arg(i));
        } else if (a == "--sharing") {
            cfg.machine.sharing = parseSharing(next_arg(i));
        } else if (a == "--warmup") {
            cfg.warmupCycles = std::strtoull(
                next_arg(i).c_str(), nullptr, 10);
        } else if (a == "--measure") {
            cfg.measureCycles = std::strtoull(
                next_arg(i).c_str(), nullptr, 10);
        } else if (a == "--seed") {
            cfg.seed =
                std::strtoull(next_arg(i).c_str(), nullptr, 10);
        } else if (a == "--seeds") {
            num_seeds = std::atoi(next_arg(i).c_str());
            if (num_seeds < 1)
                usage("--seeds wants a positive count");
        } else if (a == "--migrate") {
            cfg.migrationIntervalCycles = std::strtoull(
                next_arg(i).c_str(), nullptr, 10);
        } else if (a == "--no-dir-cache") {
            cfg.machine.dirCacheEnabled = false;
        } else if (a == "--no-clean-fwd") {
            cfg.machine.cleanForwarding = false;
        } else if (a == "--ideal-noc") {
            cfg.machine.idealNoc = true;
        } else if (a == "--csv") {
            csv = true;
        } else if (a == "--dump-stats") {
            dump = true;
        } else if (a == "--json") {
            json_path = next_arg(i);
        } else if (a == "--help" || a == "-h") {
            usage();
        } else {
            usage(("unknown option '" + a + "'").c_str());
        }
    }

    if (!mix_name.empty()) {
        if (!cfg.workloads.empty())
            usage("--mix and --vm are exclusive");
        cfg.workloads = Mix::byName(mix_name).vms;
    }
    if (cfg.workloads.empty())
        usage("no workloads given (use --mix or --vm)");

    consim::logging::setVerbose(false);

    if (dump && num_seeds > 1)
        usage("--dump-stats needs a live machine (use --seeds 1)");

    const Cycle measure = cfg.measureCycles ? cfg.measureCycles
                                            : defaultMeasureCycles();

    if (!dump) {
        // Standard path: run every seed on the parallel sweep engine
        // and report the averaged RunResult.
        std::vector<std::uint64_t> seeds;
        for (int s = 0; s < num_seeds; ++s)
            seeds.push_back(cfg.seed + static_cast<std::uint64_t>(s));
        const RunResult r = runSweepAveraged({cfg}, seeds).front();

        if (!json_path.empty())
            writeJsonDoc(json_path, runResultJson(cfg, r));

        if (csv) {
            std::cout
                << "vm,kind,threads,transactions,cycles_per_txn,"
                   "l2_accesses,l2_misses,miss_rate,c2c_clean,"
                   "c2c_dirty,miss_latency\n";
        } else {
            std::cout << "consim_run: " << cfg.workloads.size()
                      << " VMs, " << toString(cfg.policy) << ", "
                      << toString(cfg.machine.sharing)
                      << ", measured " << measure << " cycles";
            if (num_seeds > 1)
                std::cout << " x " << num_seeds << " seeds";
            std::cout << "\n\n";
        }

        TextTable table({"vm", "cycles/txn", "LLC miss rate",
                         "miss lat (cy)", "c2c clean", "c2c dirty"});
        for (std::size_t i = 0; i < r.vms.size(); ++i) {
            const VmResult &v = r.vms[i];
            if (csv) {
                std::cout
                    << i << "," << toString(v.kind) << ","
                    << WorkloadProfile::get(v.kind).numThreads << ","
                    << v.transactions << ","
                    << v.cyclesPerTransaction << "," << v.l2Accesses
                    << "," << v.l2Misses << "," << v.missRate << ","
                    << v.c2cClean << "," << v.c2cDirty << ","
                    << v.avgMissLatency << "\n";
            } else {
                table.addRow({toString(v.kind) + " #" +
                                  std::to_string(i),
                              TextTable::num(v.cyclesPerTransaction,
                                             0),
                              TextTable::pct(v.missRate),
                              TextTable::num(v.avgMissLatency, 1),
                              std::to_string(v.c2cClean),
                              std::to_string(v.c2cDirty)});
            }
        }
        if (!csv)
            table.print(std::cout);
        return 0;
    }

    // --dump-stats needs the live System, so inline the run here
    // instead of using the sweep engine.
    std::vector<std::unique_ptr<VirtualMachine>> storage;
    std::vector<VirtualMachine *> vms;
    std::vector<int> threads;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        const auto &prof = WorkloadProfile::get(cfg.workloads[i]);
        storage.push_back(std::make_unique<VirtualMachine>(
            prof, static_cast<VmId>(i),
            cfg.seed * 1000003ull + i * 7919ull));
        vms.push_back(storage.back().get());
        threads.push_back(prof.numThreads);
    }
    const auto placements =
        scheduleThreads(cfg.machine, threads, cfg.policy, cfg.seed);
    System sys(cfg.machine, vms, placements);

    const Cycle warmup =
        cfg.warmupCycles ? cfg.warmupCycles : defaultWarmupCycles();
    Rng mig_rng(cfg.seed ^ 0xd15ea5e);
    auto run_phase = [&](Cycle total) {
        if (cfg.migrationIntervalCycles == 0) {
            sys.run(total);
            return;
        }
        Cycle done = 0;
        while (done < total) {
            const Cycle chunk =
                std::min(cfg.migrationIntervalCycles, total - done);
            sys.run(chunk);
            done += chunk;
            if (done < total)
                sys.swapRandomThreads(mig_rng);
        }
    };
    run_phase(warmup);
    sys.resetStats();
    run_phase(measure);

    if (csv) {
        std::cout << "vm,kind,threads,transactions,cycles_per_txn,"
                     "l2_accesses,l2_misses,miss_rate,c2c_clean,"
                     "c2c_dirty,miss_latency\n";
    } else {
        std::cout << "consim_run: " << cfg.workloads.size()
                  << " VMs, " << toString(cfg.policy) << ", "
                  << toString(cfg.machine.sharing) << ", measured "
                  << measure << " cycles\n\n";
    }

    TextTable table({"vm", "cycles/txn", "LLC miss rate",
                     "miss lat (cy)", "c2c clean", "c2c dirty"});
    for (auto *vm : vms) {
        const auto &s = vm->vmStats();
        const double cpt =
            s.transactions.value()
                ? static_cast<double>(measure) /
                      static_cast<double>(s.transactions.value())
                : 0.0;
        if (csv) {
            std::cout << vm->id() << ","
                      << toString(vm->profile().kind) << ","
                      << vm->profile().numThreads << ","
                      << s.transactions.value() << "," << cpt << ","
                      << s.l2Accesses.value() << ","
                      << s.l2Misses.value() << "," << s.missRate()
                      << "," << s.c2cClean.value() << ","
                      << s.c2cDirty.value() << ","
                      << s.missLatency.mean() << "\n";
        } else {
            table.addRow({toString(vm->profile().kind) + " #" +
                              std::to_string(vm->id()),
                          TextTable::num(cpt, 0),
                          TextTable::pct(s.missRate()),
                          TextTable::num(s.missLatency.mean(), 1),
                          std::to_string(s.c2cClean.value()),
                          std::to_string(s.c2cDirty.value())});
        }
    }
    if (!csv)
        table.print(std::cout);

    if (dump) {
        std::cout << "\n# component statistics\n";
        sys.dumpStats(std::cout);
    }

    if (!json_path.empty()) {
        // No averaged RunResult on this path; export the config echo
        // and the full registry tree instead.
        auto doc = json::Value::object();
        doc.set("schema", "consim.run.v1");
        doc.set("config", toJson(cfg));
        doc.set("stats", sys.statsRoot().toJson());
        writeJsonDoc(json_path, doc);
    }
    return 0;
}
