/**
 * @file
 * consim_run: general-purpose command-line front end to the
 * simulator. Runs any workload list under any policy / sharing
 * degree / machine tweak and reports per-VM metrics, optionally as
 * CSV (for plotting) or with a full component statistics dump.
 *
 * Usage:
 *   consim_run [options]
 *     --mix "Mix 5"            Table IV mix (exclusive with --vm)
 *     --vm tpcw --vm tpch ...  explicit VM list
 *                              (jbb|tpcw|tpch|web|bully)
 *     --policy rr|affinity|aff-rr|random       (default affinity)
 *     --sharing N              cores per L2 group (default 4; any
 *                              count that tiles the mesh into
 *                              contiguous rectangles)
 *     --mesh XxY               chip geometry (default 4x4; e.g. 8x4,
 *                              8x8, 16x8)
 *     --vm-threads N,N,...     per-VM thread counts for heterogeneous
 *                              mixes (0 = profile default; one entry
 *                              per VM; totals above the core count
 *                              over-commit the chip with time-sliced
 *                              contexts)
 *     --timeslice N            preemption quantum for over-committed
 *                              cores (cycles; default 10000; also
 *                              CONSIM_TIMESLICE)
 *     --l2 BYTES               aggregate L2 capacity (default 16MB;
 *                              must split into whole sets per bank —
 *                              non-pow2 meshes want a matching
 *                              multiple, e.g. 36-divisible on 6x6)
 *     --mem-issue N            min cycles between memory-controller
 *                              accepts (default 4; raise to model a
 *                              bandwidth-constrained node, e.g. the
 *                              isolation experiments use 96)
 *     --warmup N --measure N   cycles          (default library)
 *     --seed N                                 (default 1)
 *     --seeds N                average N seeds (seed..seed+N-1), run
 *                              in parallel on CONSIM_JOBS threads
 *     --migrate N              swap threads every N cycles
 *     --no-dir-cache           ablation: no directory caches
 *     --no-clean-fwd           ablation: memory supplies clean data
 *     --ideal-noc              ablation: fixed-latency interconnect
 *     --check off|basic|full   runtime check level (CONSIM_CHECK)
 *     --watchdog N             progress-watchdog interval in cycles
 *                              (0 disables; default CONSIM_WATCHDOG)
 *     --deadline N             abort the point after N sim cycles
 *     --fault PLAN             inject faults, e.g.
 *                              "wedge:core=3,at=250000;drop:nth=800"
 *     --qos SPEC               per-VM QoS / isolation, e.g.
 *                              "static:vm=0,ways=4,vcs=1,tokens=8" or
 *                              "dynamic:vm=0,ways=4,epoch=100000"
 *                              (also via the CONSIM_QOS env var)
 *     --dyn-sched SPEC         online thread-migration policy, e.g.
 *                              "load-balance,epoch=100000",
 *                              "affinity-repair" or
 *                              "contention-aware,epoch=50000"
 *                              (also via CONSIM_DYN_SCHED)
 *     --ckpt-every N           keep periodic consim.ckpt.v5 snapshots
 *                              every N cycles (0 disables; default
 *                              CONSIM_CKPT, off)
 *     --ckpt-out PATH          on failure, write the last pre-trip
 *                              snapshot to PATH (needs --ckpt-every)
 *     --resume PATH            resume a consim.ckpt.v5 snapshot; the
 *                              run config comes from the checkpoint
 *                              (exclusive with --mix/--vm/--seeds)
 *     --run-jobs N             worker threads inside each simulation
 *                              (tile-parallel event core; results are
 *                              byte-identical to serial; default
 *                              CONSIM_RUN_JOBS, 1)
 *     --csv                    machine-readable per-VM output
 *     --dump-stats             full component statistics dump
 *     --json PATH              write the consim.run.v1 JSON envelope
 *                              (also via the CONSIM_JSON env var)
 *
 * A tripped checker / watchdog / deadline exits 1 after printing the
 * structured consim.diag.v1 dump to stderr.
 *
 * Examples:
 *   consim_run --mix "Mix 7" --policy rr
 *   consim_run --vm jbb --vm jbb --sharing 8 --csv
 *   consim_run --mix "Mix 5" --json mix5.json
 *   consim_run --mix "Mix 5" --ckpt-every 1000000 --ckpt-out w.ckpt
 *   consim_run --resume w.ckpt --json mix5.json
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/mix.hh"
#include "core/report.hh"
#include "exec/sweep.hh"

namespace
{

using namespace consim;

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::cerr << "error: " << msg << "\n";
    std::cerr <<
        "usage: consim_run [--mix NAME | --vm KIND...] "
        "[--policy P] [--sharing N]\n"
        "       [--mesh XxY] [--vm-threads N,N,...] [--timeslice N] "
        "[--l2 BYTES] [--mem-issue N]\n"
        "       [--warmup N] [--measure N] [--seed N] [--seeds N] "
        "[--migrate N]\n"
        "       [--no-dir-cache] [--no-clean-fwd] [--ideal-noc] "
        "[--csv] [--dump-stats]\n"
        "       [--check off|basic|full] [--watchdog N] "
        "[--deadline N] [--fault PLAN] [--qos SPEC] "
        "[--dyn-sched SPEC]\n"
        "       [--ckpt-every N] [--ckpt-out PATH] [--resume PATH] "
        "[--run-jobs N]\n"
        "       [--json PATH]\n";
    std::exit(2);
}

/** Strict cycle/seed-count parsing: junk exits 2, never becomes 0. */
std::uint64_t
parseCount(const std::string &opt, const std::string &s)
{
    std::uint64_t v = 0;
    if (!parseU64(s, v))
        usage((opt + " wants an unsigned integer, got '" + s + "'")
                  .c_str());
    return v;
}

void
writeJsonDoc(const std::string &path, const json::Value &doc)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot open JSON output path " << path
                  << "\n";
        std::exit(1);
    }
    doc.write(out, 2);
    out << "\n";
}

/** Print a tripped checker/watchdog/deadline error and exit 1. */
[[noreturn]] void
reportSimError(const std::string &kind, const std::string &msg,
               const std::string &diag)
{
    std::cerr << "consim_run: " << kind << " error: " << msg << "\n";
    if (!diag.empty()) {
        json::Value d;
        if (json::parse(diag, d)) {
            d.write(std::cerr, 2);
            std::cerr << "\n";
        } else {
            std::cerr << diag << "\n";
        }
    }
    std::exit(1);
}

WorkloadKind
parseKind(const std::string &s)
{
    if (s == "jbb")
        return WorkloadKind::SpecJbb;
    if (s == "tpcw")
        return WorkloadKind::TpcW;
    if (s == "tpch")
        return WorkloadKind::TpcH;
    if (s == "web")
        return WorkloadKind::SpecWeb;
    if (s == "bully")
        return WorkloadKind::Bully;
    if (s == "bursty")
        return WorkloadKind::Bursty;
    usage("unknown workload kind (jbb|tpcw|tpch|web|bully|bursty)");
}

SchedPolicy
parsePolicy(const std::string &s)
{
    if (s == "rr")
        return SchedPolicy::RoundRobin;
    if (s == "affinity")
        return SchedPolicy::Affinity;
    if (s == "aff-rr")
        return SchedPolicy::AffinityRR;
    if (s == "random")
        return SchedPolicy::Random;
    usage("unknown policy (rr|affinity|aff-rr|random)");
}

SharingDegree
parseSharing(const std::string &s)
{
    // Any positive degree parses; MachineConfig::validate() rejects
    // counts that do not divide the configured chip into contiguous
    // rectangular groups.
    int n = 0;
    if (!parseIntInRange(s, 1, 65536, n))
        usage("sharing degree must be a positive core count");
    return sharingDegree(n);
}

/** Parse "XxY" mesh geometry (e.g. "8x4"). */
void
parseMesh(const std::string &s, MachineConfig &m)
{
    const auto sep = s.find_first_of("xX");
    int mx = 0, my = 0;
    if (sep == std::string::npos ||
        !parseIntInRange(s.substr(0, sep), 2, 256, mx) ||
        !parseIntInRange(s.substr(sep + 1), 2, 256, my))
        usage("--mesh wants COLSxROWS with each dimension in 2..256, "
              "e.g. 8x4");
    m.meshX = mx;
    m.meshY = my;
}

/** Parse a comma list of per-VM thread counts ("2,4,8,0"). */
std::vector<int>
parseVmThreads(const std::string &s)
{
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string item =
            s.substr(pos, comma == std::string::npos ? std::string::npos
                                                     : comma - pos);
        int n = 0;
        if (!parseIntInRange(item, 0, 4096, n))
            usage("--vm-threads wants a comma list of per-VM thread "
                  "counts (0 = that VM's profile default), e.g. "
                  "2,4,8,0");
        out.push_back(n);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/** Per-VM metrics report shared by the run and resume paths. */
void
printRunResult(const RunConfig &cfg, const RunResult &r, bool csv,
               int num_seeds, const char *note)
{
    if (csv) {
        std::cout << "vm,kind,threads,transactions,cycles_per_txn,"
                     "l2_accesses,l2_misses,miss_rate,c2c_clean,"
                     "c2c_dirty,miss_latency\n";
    } else {
        std::cout << "consim_run: " << cfg.workloads.size() << " VMs, "
                  << toString(cfg.policy) << ", "
                  << toString(cfg.machine.sharing) << ", measured "
                  << r.measuredCycles << " cycles";
        if (num_seeds > 1)
            std::cout << " x " << num_seeds << " seeds";
        if (note && *note)
            std::cout << " (" << note << ")";
        std::cout << "\n\n";
    }

    TextTable table({"vm", "cycles/txn", "LLC miss rate",
                     "miss lat (cy)", "c2c clean", "c2c dirty"});
    for (std::size_t i = 0; i < r.vms.size(); ++i) {
        const VmResult &v = r.vms[i];
        if (csv) {
            std::cout << i << "," << toString(v.kind) << ","
                      << WorkloadProfile::get(v.kind).numThreads << ","
                      << v.transactions << ","
                      << v.cyclesPerTransaction << "," << v.l2Accesses
                      << "," << v.l2Misses << "," << v.missRate << ","
                      << v.c2cClean << "," << v.c2cDirty << ","
                      << v.avgMissLatency << "\n";
        } else {
            table.addRow({toString(v.kind) + " #" + std::to_string(i),
                          TextTable::num(v.cyclesPerTransaction, 0),
                          TextTable::pct(v.missRate),
                          TextTable::num(v.avgMissLatency, 1),
                          std::to_string(v.c2cClean),
                          std::to_string(v.c2cDirty)});
        }
    }
    if (!csv)
        table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    RunConfig cfg;
    bool csv = false;
    bool dump = false;
    int num_seeds = 1;
    std::string mix_name;
    std::string json_path;
    std::string ckpt_out;
    std::string resume_path;
    if (const char *env = std::getenv("CONSIM_JSON"))
        json_path = env;
    if (const char *env = std::getenv("CONSIM_QOS")) {
        // Env fallback resolved before the flags, so an explicit
        // --qos wins. Malformed specs are fatal, never silently off.
        std::string err;
        if (!QosConfig::parse(env, cfg.qos, &err))
            usage(("bad CONSIM_QOS spec: " + err).c_str());
    }
    if (const char *env = std::getenv("CONSIM_DYN_SCHED")) {
        // Same contract as CONSIM_QOS: flags win, junk is fatal.
        std::string err;
        if (!DynSchedConfig::parse(env, cfg.dynSched, &err))
            usage(("bad CONSIM_DYN_SCHED spec: " + err).c_str());
    }

    auto next_arg = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            usage("missing argument value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--mix") {
            mix_name = next_arg(i);
        } else if (a == "--vm") {
            cfg.workloads.push_back(parseKind(next_arg(i)));
        } else if (a == "--policy") {
            cfg.policy = parsePolicy(next_arg(i));
        } else if (a == "--sharing") {
            cfg.machine.sharing = parseSharing(next_arg(i));
        } else if (a == "--mesh") {
            parseMesh(next_arg(i), cfg.machine);
        } else if (a == "--vm-threads") {
            cfg.vmThreads = parseVmThreads(next_arg(i));
        } else if (a == "--timeslice") {
            // Preemption quantum for over-committed cores (cycles;
            // default Core::kDefaultTimesliceCycles). Echoed in the
            // run.v1 config only when set.
            cfg.timesliceCycles = parseCount(a, next_arg(i));
        } else if (a == "--l2") {
            // Non-pow2 meshes need a matching aggregate (validate()
            // wants a whole number of sets per bank, e.g. 36-divisible
            // on a 6x6 chip), so the size must be settable here.
            cfg.machine.l2TotalBytes = parseCount(a, next_arg(i));
        } else if (a == "--mem-issue") {
            // Bandwidth-constrained consolidation nodes (the QoS
            // isolation experiments) raise this past the default 4.
            cfg.machine.memIssueInterval =
                static_cast<int>(parseCount(a, next_arg(i)));
        } else if (a == "--warmup") {
            cfg.warmupCycles = parseCount(a, next_arg(i));
        } else if (a == "--measure") {
            cfg.measureCycles = parseCount(a, next_arg(i));
        } else if (a == "--seed") {
            cfg.seed = parseCount(a, next_arg(i));
        } else if (a == "--seeds") {
            if (!parseIntInRange(next_arg(i), 1, 1024, num_seeds))
                usage("--seeds wants a count in 1..1024");
        } else if (a == "--migrate") {
            cfg.migrationIntervalCycles = parseCount(a, next_arg(i));
        } else if (a == "--check") {
            check::Level lvl;
            if (!check::parseLevel(next_arg(i), lvl))
                usage("--check wants off|basic|full");
            check::setLevel(lvl);
        } else if (a == "--watchdog") {
            const std::uint64_t n = parseCount(a, next_arg(i));
            // In RunConfig, 0 means "library default", so an explicit
            // --watchdog 0 disables via the env override instead.
            if (n == 0)
                ::setenv("CONSIM_WATCHDOG", "0", 1);
            else
                cfg.watchdogIntervalCycles = n;
        } else if (a == "--deadline") {
            cfg.cycleDeadline = parseCount(a, next_arg(i));
        } else if (a == "--fault") {
            std::string err;
            if (!FaultPlan::parse(next_arg(i), cfg.faults, &err))
                usage(("bad --fault plan: " + err).c_str());
        } else if (a == "--qos") {
            std::string err;
            if (!QosConfig::parse(next_arg(i), cfg.qos, &err))
                usage(("bad --qos spec: " + err).c_str());
        } else if (a == "--dyn-sched") {
            std::string err;
            if (!DynSchedConfig::parse(next_arg(i), cfg.dynSched,
                                       &err))
                usage(("bad --dyn-sched spec: " + err).c_str());
        } else if (a == "--ckpt-every") {
            const std::uint64_t n = parseCount(a, next_arg(i));
            // In RunConfig, 0 means "library default", so an explicit
            // --ckpt-every 0 disables via the env override instead.
            if (n == 0)
                ::setenv("CONSIM_CKPT", "0", 1);
            else
                cfg.ckptEveryCycles = n;
        } else if (a == "--run-jobs") {
            if (!parseIntInRange(next_arg(i), 1, 4096, cfg.runJobs))
                usage("--run-jobs wants a count in 1..4096");
        } else if (a == "--ckpt-out") {
            ckpt_out = next_arg(i);
        } else if (a == "--resume") {
            resume_path = next_arg(i);
        } else if (a == "--no-dir-cache") {
            cfg.machine.dirCacheEnabled = false;
        } else if (a == "--no-clean-fwd") {
            cfg.machine.cleanForwarding = false;
        } else if (a == "--ideal-noc") {
            cfg.machine.idealNoc = true;
        } else if (a == "--csv") {
            csv = true;
        } else if (a == "--dump-stats") {
            dump = true;
        } else if (a == "--json") {
            json_path = next_arg(i);
        } else if (a == "--help" || a == "-h") {
            usage();
        } else {
            usage(("unknown option '" + a + "'").c_str());
        }
    }

    if (!resume_path.empty()) {
        // Resume takes everything — workloads, policy, machine,
        // windows, seed — from the checkpoint's embedded context.
        if (!cfg.workloads.empty() || !mix_name.empty())
            usage("--resume takes its configuration from the "
                  "checkpoint (drop --mix/--vm)");
        if (dump || num_seeds > 1)
            usage("--resume runs a single live point "
                  "(drop --dump-stats/--seeds)");

        consim::logging::setVerbose(false);

        // runJobs never enters the checkpoint context, so thread the
        // flag through the environment the resume driver resolves it
        // from (a resume may use a different count than the original).
        if (cfg.runJobs)
            ::setenv("CONSIM_RUN_JOBS",
                     std::to_string(cfg.runJobs).c_str(), 1);

        std::ifstream in(resume_path);
        if (!in) {
            std::cerr << "error: cannot open checkpoint "
                      << resume_path << "\n";
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        json::Value doc;
        std::string err;
        if (!json::parse(text.str(), doc, &err)) {
            std::cerr << "error: " << resume_path
                      << " is not valid JSON: " << err << "\n";
            return 1;
        }
        try {
            const RunConfig rcfg = configFromCheckpoint(doc);
            // Wrap through averageRunResults exactly like the normal
            // single-seed path, so the envelope (seeds_used included)
            // is byte-identical to an uninterrupted run's.
            const RunResult r =
                averageRunResults({resumeExperiment(doc)});
            if (!json_path.empty())
                writeJsonDoc(json_path, runResultJson(rcfg, r));
            printRunResult(rcfg, r, csv, 1, "resumed");
        } catch (const SimError &e) {
            reportSimError(toString(e.kind()), e.what(), e.diag());
        }
        return 0;
    }

    if (!mix_name.empty()) {
        if (!cfg.workloads.empty())
            usage("--mix and --vm are exclusive");
        const Mix &mix = Mix::byName(mix_name);
        cfg.workloads = mix.vms;
        if (cfg.vmThreads.empty())
            cfg.vmThreads = mix.threads;
    }
    if (cfg.workloads.empty())
        usage("no workloads given (use --mix or --vm)");
    if (!cfg.vmThreads.empty() &&
        cfg.vmThreads.size() != cfg.workloads.size())
        usage("--vm-threads wants exactly one entry per VM");

    consim::logging::setVerbose(false);

    if (dump && num_seeds > 1)
        usage("--dump-stats needs a live machine (use --seeds 1)");

    const Cycle measure = cfg.measureCycles ? cfg.measureCycles
                                            : defaultMeasureCycles();

    if (!dump) {
        // Standard path: run every seed on the parallel sweep engine
        // and report the averaged RunResult. Unlike batch sweeps,
        // a front-end run fails loudly: no retries, and the first
        // tripped checker/watchdog/deadline exits with its diag.
        std::vector<RunConfig> seed_cfgs;
        for (int s = 0; s < num_seeds; ++s) {
            seed_cfgs.push_back(cfg);
            seed_cfgs.back().seed =
                cfg.seed + static_cast<std::uint64_t>(s);
        }
        SweepOptions opts;
        opts.maxRetries = 0;
        std::vector<SweepRun> runs = runSweepEx(seed_cfgs, opts);
        std::vector<RunResult> group;
        group.reserve(runs.size());
        for (std::size_t s = 0; s < runs.size(); ++s) {
            if (!runs[s].ok) {
                std::cerr << "consim_run: seed "
                          << seed_cfgs[s].seed << " failed\n";
                if (!ckpt_out.empty() && !runs[s].ckpt.empty()) {
                    std::ofstream out(ckpt_out);
                    if (out) {
                        out << runs[s].ckpt << "\n";
                        std::cerr << "consim_run: wrote pre-trip "
                                     "checkpoint to "
                                  << ckpt_out << " (resume with "
                                     "--resume)\n";
                    } else {
                        std::cerr << "consim_run: cannot open "
                                  << ckpt_out << "\n";
                    }
                }
                reportSimError(runs[s].errorKind,
                               runs[s].errorMessage, runs[s].diag);
            }
            group.push_back(std::move(runs[s].result));
        }
        const RunResult r = averageRunResults(std::move(group));

        if (!json_path.empty())
            writeJsonDoc(json_path, runResultJson(cfg, r));

        if (csv) {
            std::cout
                << "vm,kind,threads,transactions,cycles_per_txn,"
                   "l2_accesses,l2_misses,miss_rate,c2c_clean,"
                   "c2c_dirty,miss_latency\n";
        } else {
            std::cout << "consim_run: " << cfg.workloads.size()
                      << " VMs, " << toString(cfg.policy) << ", "
                      << toString(cfg.machine.sharing)
                      << ", measured " << measure << " cycles";
            if (num_seeds > 1)
                std::cout << " x " << num_seeds << " seeds";
            std::cout << "\n\n";
        }

        TextTable table({"vm", "cycles/txn", "LLC miss rate",
                         "miss lat (cy)", "c2c clean", "c2c dirty"});
        for (std::size_t i = 0; i < r.vms.size(); ++i) {
            const VmResult &v = r.vms[i];
            if (csv) {
                std::cout
                    << i << "," << toString(v.kind) << ","
                    << WorkloadProfile::get(v.kind).numThreads << ","
                    << v.transactions << ","
                    << v.cyclesPerTransaction << "," << v.l2Accesses
                    << "," << v.l2Misses << "," << v.missRate << ","
                    << v.c2cClean << "," << v.c2cDirty << ","
                    << v.avgMissLatency << "\n";
            } else {
                table.addRow({toString(v.kind) + " #" +
                                  std::to_string(i),
                              TextTable::num(v.cyclesPerTransaction,
                                             0),
                              TextTable::pct(v.missRate),
                              TextTable::num(v.avgMissLatency, 1),
                              std::to_string(v.c2cClean),
                              std::to_string(v.c2cDirty)});
            }
        }
        if (!csv)
            table.print(std::cout);
        return 0;
    }

    // --dump-stats needs the live System, so inline the run here
    // instead of using the sweep engine.
    std::vector<std::unique_ptr<VirtualMachine>> storage;
    std::vector<VirtualMachine *> vms;
    std::vector<int> threads;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        const auto &prof = WorkloadProfile::get(cfg.workloads[i]);
        storage.push_back(std::make_unique<VirtualMachine>(
            prof, static_cast<VmId>(i),
            cfg.seed * 1000003ull + i * 7919ull));
        vms.push_back(storage.back().get());
        threads.push_back(prof.numThreads);
    }
    const auto placements =
        scheduleThreads(cfg.machine, threads, cfg.policy, cfg.seed);
    System sys(cfg.machine, vms, placements);
    sys.setWatchdogInterval(cfg.watchdogIntervalCycles
                                ? cfg.watchdogIntervalCycles
                                : defaultWatchdogIntervalCycles());
    if (cfg.cycleDeadline != 0)
        sys.setCycleDeadline(cfg.cycleDeadline);
    sys.setRunJobs(cfg.runJobs ? cfg.runJobs : defaultRunJobs());
    if (!cfg.faults.empty())
        sys.setFaultPlan(cfg.faults);
    if (cfg.qos.enabled())
        sys.setQosConfig(cfg.qos);
    if (cfg.dynSched.enabled())
        sys.setDynSched(cfg.dynSched);

    const Cycle warmup =
        cfg.warmupCycles ? cfg.warmupCycles : defaultWarmupCycles();
    Rng mig_rng(cfg.seed ^ 0xd15ea5e);
    auto run_phase = [&](Cycle total) {
        if (cfg.migrationIntervalCycles == 0) {
            sys.run(total);
            return;
        }
        Cycle done = 0;
        while (done < total) {
            const Cycle chunk =
                std::min(cfg.migrationIntervalCycles, total - done);
            sys.run(chunk);
            done += chunk;
            if (done < total)
                sys.swapRandomThreads(mig_rng);
        }
    };
    try {
        run_phase(warmup);
        if (CONSIM_CHECK_ACTIVE(Full))
            sys.auditWindow();
        sys.resetStats();
        run_phase(measure);
        if (CONSIM_CHECK_ACTIVE(Full))
            sys.auditWindow();
    } catch (const SimError &e) {
        reportSimError(toString(e.kind()), e.what(), e.diag());
    }

    if (csv) {
        std::cout << "vm,kind,threads,transactions,cycles_per_txn,"
                     "l2_accesses,l2_misses,miss_rate,c2c_clean,"
                     "c2c_dirty,miss_latency\n";
    } else {
        std::cout << "consim_run: " << cfg.workloads.size()
                  << " VMs, " << toString(cfg.policy) << ", "
                  << toString(cfg.machine.sharing) << ", measured "
                  << measure << " cycles\n\n";
    }

    TextTable table({"vm", "cycles/txn", "LLC miss rate",
                     "miss lat (cy)", "c2c clean", "c2c dirty"});
    for (auto *vm : vms) {
        const auto &s = vm->vmStats();
        const double cpt =
            s.transactions.value()
                ? static_cast<double>(measure) /
                      static_cast<double>(s.transactions.value())
                : 0.0;
        if (csv) {
            std::cout << vm->id() << ","
                      << toString(vm->profile().kind) << ","
                      << vm->profile().numThreads << ","
                      << s.transactions.value() << "," << cpt << ","
                      << s.l2Accesses.value() << ","
                      << s.l2Misses.value() << "," << s.missRate()
                      << "," << s.c2cClean.value() << ","
                      << s.c2cDirty.value() << ","
                      << s.missLatency.mean() << "\n";
        } else {
            table.addRow({toString(vm->profile().kind) + " #" +
                              std::to_string(vm->id()),
                          TextTable::num(cpt, 0),
                          TextTable::pct(s.missRate()),
                          TextTable::num(s.missLatency.mean(), 1),
                          std::to_string(s.c2cClean.value()),
                          std::to_string(s.c2cDirty.value())});
        }
    }
    if (!csv)
        table.print(std::cout);

    if (dump) {
        std::cout << "\n# component statistics\n";
        sys.dumpStats(std::cout);
    }

    if (!json_path.empty()) {
        // No averaged RunResult on this path; export the config echo
        // and the full registry tree instead.
        auto doc = json::Value::object();
        doc.set("schema", "consim.run.v1");
        doc.set("config", toJson(cfg));
        doc.set("stats", sys.statsRoot().toJson());
        writeJsonDoc(json_path, doc);
    }
    return 0;
}
